"""FLEET TELEMETRY — observing the fleet must cost ~nothing.

The fleet registry (``repro.obs.fleet``) instruments the sweep-service
hot path: every coordinator lease/complete, every worker report, every
store access.  Like the simulation's observability (PR 3), the claim is
two-sided and recorded to ``BENCH_fleet_telemetry.json``:

* **disabled is free** — the guard at every instrumented site is one
  module-global load plus one attribute check (``guard_ns_per_site``,
  asserted far below 1 µs);
* **enabled is cheap and harmless** — a stub-executor queue run (pure
  coordinator/worker overhead, where telemetry is proportionally most
  expensive) with telemetry on vs off gives ``telemetry_on_over_off``,
  and a real campaign through ``LocalService`` with telemetry enabled
  still merges byte-identical to the local engine while serving valid
  Prometheus text and a valid fleet trace.
"""

import pickle
import time

from repro.apps.brake.scenario import BrakeScenario
from repro.harness import ScenarioSpec, SweepRunner, env_int
from repro.obs import fleet
from repro.obs.export import validate_trace_data
from repro.obs.fleet import (
    fleet_capture,
    fleet_trace_events,
    prometheus_text,
    validate_prometheus_text,
)
from repro.service import (
    Coordinator,
    CoordinatorConfig,
    LocalClient,
    LocalService,
    ResultStore,
    Worker,
)


def _stub_execute(job):
    return [
        {
            "seed": seed,
            "encoding": "json",
            "payload": seed,
            "error": None,
            "cached": False,
            "elapsed_s": 0.0,
        }
        for seed in job["seeds"]
    ]


def _queue_run(store_dir, queue_jobs, frames):
    """One stub-executor queue drain; returns (wall_s, coordinator, id)."""
    coordinator = Coordinator(
        ResultStore(store_dir), CoordinatorConfig(chunk_size=1)
    )
    client = LocalClient(coordinator)
    spec = ScenarioSpec(
        variant="det",
        seeds=tuple(range(queue_jobs)),
        scenario=BrakeScenario(n_frames=frames),
        label="bench-fleet-queue",
    )
    status = client.submit(spec)
    worker = Worker(client, poll_interval_s=0.001, execute=_stub_execute)
    started = time.perf_counter()
    completed = worker.run(max_jobs=queue_jobs)
    wall = time.perf_counter() - started
    assert completed == queue_jobs
    assert client.result(status["campaign"])["status"] == "done"
    return wall, coordinator, status["campaign"]


def test_fleet_telemetry(show, bench_json, tmp_path):
    queue_jobs = env_int("REPRO_FLEET_JOBS", 40)
    frames = env_int("REPRO_FLEET_FRAMES", 30)
    seeds = tuple(range(env_int("REPRO_FLEET_SEEDS", 6)))

    # -- micro-cost of the disabled guard ------------------------------------
    fleet.disable()
    iterations = 200_000
    started = time.perf_counter()
    for _ in range(iterations):
        f = fleet.ACTIVE
        if f.enabled:  # pragma: no cover - disabled in this loop
            raise AssertionError("fleet telemetry unexpectedly enabled")
    per_guard_ns = (time.perf_counter() - started) / iterations * 1e9

    # -- queue overhead, telemetry off vs on ---------------------------------
    fleet.disable()
    wall_off, _, _ = _queue_run(tmp_path / "queue-off", queue_jobs, frames)
    with fleet_capture() as handle:
        wall_on, coordinator, campaign = _queue_run(
            tmp_path / "queue-on", queue_jobs, frames
        )
        # While enabled: the exposition and the trace must be valid.
        prom_problems = validate_prometheus_text(prometheus_text())
        report = coordinator.report(campaign)
        trace_problems = validate_trace_data(fleet_trace_events(report))
        jobs_completed = handle.counter_value(
            "fleet.coordinator.jobs_completed"
        )

    # -- a real campaign with telemetry enabled, checked against local -------
    campaign_spec = ScenarioSpec(
        variant="det",
        seeds=seeds,
        scenario=BrakeScenario(n_frames=frames),
        label="bench-fleet-campaign",
    )
    fleet.disable()
    reference = SweepRunner(workers=1, use_cache=False).run_spec(
        campaign_spec
    ).values()
    with LocalService(tmp_path / "svc-store", workers=2) as service:
        started = time.perf_counter()
        values = service.run_spec(campaign_spec)
        campaign_wall = time.perf_counter() - started
        equals_local = len(values) == len(reference) and all(
            pickle.dumps(a) == pickle.dumps(b)
            for a, b in zip(values, reference)
        )
    fleet.disable()

    bench_json.record(
        guard_iterations=iterations,
        guard_ns_per_site=round(per_guard_ns, 1),
        queue_jobs=queue_jobs,
        telemetry_off_wall_s=round(wall_off, 3),
        telemetry_on_wall_s=round(wall_on, 3),
        telemetry_on_over_off=round(wall_on / wall_off, 3),
        jobs_completed=jobs_completed,
        campaign_seeds=len(seeds),
        campaign_frames=frames,
        campaign_wall_s=round(campaign_wall, 3),
        distributed_equals_local=equals_local,
        prometheus_valid=not prom_problems,
        trace_valid=not trace_problems,
    )
    show(
        "fleet telemetry: "
        f"guard {per_guard_ns:.0f} ns/site | "
        f"queue {wall_off:.2f}s off vs {wall_on:.2f}s on "
        f"(x{wall_on / wall_off:.2f}) | "
        f"campaign {len(seeds)} seeds in {campaign_wall:.2f}s "
        f"(distributed == local: {equals_local})"
    )
    assert per_guard_ns < 1_000  # the disabled path costs ~nothing
    assert jobs_completed == queue_jobs
    assert prom_problems == []
    assert trace_problems == []
    assert equals_local
