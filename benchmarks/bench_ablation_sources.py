"""ABLATE-SRC — Section II.B: the three sources of nondeterminism.

Paper claims: AP has three distinct sources of nondeterminism —
(1) thread-based SWC implementation, (2) undefined processing order of
incoming messages, (3) unordered/unpredictable transport — and the AP
"deterministic client" provision addresses only the first.

Expected shape (asserted): the counter app is nondeterministic with the
default thread-per-invocation dispatch; serializing the server (fixing
source 1) with FIFO transport and a single client makes it
deterministic; re-enabling unordered transport (source 3) or adding a
second client (source 2) makes it nondeterministic again even though
source 1 stays fixed.
"""

from repro.harness import SweepRunner, env_int
from repro.harness.figures import ablation_sources


def test_ablation_sources(benchmark, show, bench_json):
    n_seeds = env_int("REPRO_ABLATION_SEEDS", 25)
    runner = SweepRunner()
    result = benchmark.pedantic(
        ablation_sources, args=(n_seeds,), kwargs={"sweep": runner},
        rounds=1, iterations=1,
    )
    show(result.render())
    show(runner.stats.summary_line())

    by_label = {label: counts for label, counts in result.rows}
    bench_json.sweep(runner).record(
        seeds=n_seeds,
        distinct_outcomes={
            label: len(counts) for label, counts in result.rows
        },
    )
    source1 = by_label["source 1 on: thread-per-invocation"]
    fixed = by_label["sources off: serialized + FIFO"]
    source3 = by_label["source 3 on: unordered transport"]
    source2 = by_label["source 2 on: second client"]

    assert len(source1) >= 2, "thread dispatch alone causes nondeterminism"
    assert set(fixed) == {3}, "fixing all sources restores determinism"
    assert len(source3) >= 2, "unordered transport reintroduces it"
    assert len(source2) >= 2, "a second client reintroduces it"
