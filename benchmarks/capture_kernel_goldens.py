"""Regenerate the kernel fingerprint goldens.

Usage::

    PYTHONPATH=src python benchmarks/capture_kernel_goldens.py

Rewrites ``tests/data/kernel_fingerprints.json``.  Only do this after an
*intentional* semantic change to the kernel or the brake demonstrator —
the whole point of the goldens is that pure performance work reproduces
them bit-exactly (see ``tests/test_kernel_fingerprints.py``).  Explain
the semantic change in the commit that refreshes them.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.apps.brake.det import run_det_brake_assistant
from repro.apps.brake.nondet import run_nondet_brake_assistant
from repro.explore import IN_BUDGET_PREEMPT_NS, PctStrategy, calibration_scenario
from repro.faults import FaultPlan
from repro.sim.rng import stream_hooks

GOLDEN_PATH = Path(__file__).resolve().parent.parent / (
    "tests/data/kernel_fingerprints.json"
)


def _case(result) -> dict:
    return {
        "traces": dict(result.trace_fingerprints),
        "outcome": result.outcome_digest(),
    }


def main() -> None:
    golden: dict = {"format": "kernel-fingerprints/v2", "cases": {}}

    for seed in (0, 1, 7):
        scenario = calibration_scenario(20, deterministic_camera=True)
        golden["cases"][f"det-seed{seed}"] = _case(
            run_det_brake_assistant(seed, scenario)
        )

    for seed in (3, 11):
        scenario = calibration_scenario(20)
        golden["cases"][f"nondet-seed{seed}"] = _case(
            run_nondet_brake_assistant(seed, scenario)
        )

    scenario = calibration_scenario(15, deterministic_camera=True)
    strategy = PctStrategy(depth=4, preempt_ns=IN_BUDGET_PREEMPT_NS, seed=5)
    schedule = strategy.schedule_for(1, base_seed=0, horizon=400)
    assert schedule.preemptions, "PCT schedule must actually preempt"
    with stream_hooks(schedule.controller(exclude=("camera",))):
        golden["cases"]["pct-replay"] = _case(run_det_brake_assistant(0, scenario))

    scenario = calibration_scenario(20, deterministic_camera=True)
    plan = FaultPlan.camera_faults(seed=1, drop=0.1, label="kernel-golden")
    golden["cases"]["fault-plan"] = _case(
        run_det_brake_assistant(0, scenario, fault_plan=plan)
    )

    with GOLDEN_PATH.open("w") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden['cases'])} cases)")


if __name__ == "__main__":
    main()
