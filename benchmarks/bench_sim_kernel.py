"""Bare sim-kernel event-throughput benchmark (the PR6 overhaul gate).

Measures events/s of :class:`repro.sim.core.Simulator` across the event
shapes the runtime layers actually generate:

* ``oneshot`` — N cancellable ``at()`` events at distinct timestamps
  (the pre-overhaul benchmark's shape, kept for trajectory continuity);
* ``burst`` — same-timestamp fan-out via ``post_at()`` (reaction
  batches, ``after(0)`` trampolines) — the shape the bucketed dispatch
  loop is built for;
* ``chain`` — each callback schedules the next (``post_after``), the
  CPU-scheduler dispatch/compute pattern;
* ``timer`` — re-arming ``timer_at()`` wakeups through the pooled
  handle freelist (sleepers, condvar timeouts).

Scale is ``REPRO_KERNEL_EVENTS`` per shape (default 20k: CI scale; the
nightly perf workflow runs 200k).  The CI *kernel-throughput* job sets
``REPRO_KERNEL_ENFORCE_FLOOR=1``, asserting the headline and burst
events/s against the ``FLOOR_*`` constants below — absolute lower
bounds chosen far below a healthy run so only a real regression (not
machine noise) trips them.
"""

import os
import time

from repro.sim import Simulator

#: Events per shape; CI default keeps the whole file under a few seconds.
SCALE = int(os.environ.get("REPRO_KERNEL_EVENTS", "20000"))

#: Same-time fan-out width for the burst shape.
BURST_WIDTH = 100

#: Absolute lower bounds for the floor gate (events/s).  Chosen ~4x
#: below a healthy dev-machine run so a slow CI runner never trips them
#: while a genuine regression (losing the bucketed dispatch or the
#: handle pool) still does.  Raise them alongside real kernel wins.
FLOOR_EVENTS_PER_S = 500_000
FLOOR_BURST_EVENTS_PER_S = 1_500_000


def _shape_oneshot(n: int) -> int:
    sim = Simulator()
    callback = lambda: None  # noqa: E731
    for index in range(n):
        sim.at(index, callback)
    sim.run()
    return sim.events_processed


def _shape_burst(n: int) -> int:
    sim = Simulator()
    callback = lambda: None  # noqa: E731
    for time_index in range(n // BURST_WIDTH):
        for _ in range(BURST_WIDTH):
            sim.post_at(time_index, callback)
    sim.run()
    return sim.events_processed


def _shape_chain(n: int) -> int:
    sim = Simulator()
    remaining = n

    def step():
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sim.post_after(1, step)

    sim.post_after(1, step)
    sim.run()
    return sim.events_processed


def _shape_timer(n: int) -> int:
    sim = Simulator()
    remaining = n

    def tick():
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sim.timer_at(sim.now + 1, tick)

    sim.timer_at(1, tick)
    sim.run()
    return sim.events_processed


SHAPES = {
    "oneshot": _shape_oneshot,
    "burst": _shape_burst,
    "chain": _shape_chain,
    "timer": _shape_timer,
}


def _best_time(shape, n: int, repeats: int = 3) -> float:
    """Best-of-*repeats* wall seconds (min defeats CI noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        processed = shape(n)
        elapsed = time.perf_counter() - started
        assert processed == n
        best = min(best, elapsed)
    return best


def test_sim_kernel_event_throughput(benchmark, bench_json):
    """Events/s per shape + a mixed headline, gated against the floor."""
    times = {name: _best_time(shape, SCALE) for name, shape in SHAPES.items()}
    total_events = SCALE * len(SHAPES)
    headline = total_events / sum(times.values())

    def mixed():
        total = 0
        for shape in SHAPES.values():
            total += shape(SCALE)
        return total

    assert benchmark(mixed) == total_events

    burst_rate = SCALE / times["burst"]
    bench_json.record(
        events=total_events,
        events_per_shape=SCALE,
        events_per_s=round(headline),
        oneshot_events_per_s=round(SCALE / times["oneshot"]),
        burst_events_per_s=round(burst_rate),
        chain_events_per_s=round(SCALE / times["chain"]),
        timer_events_per_s=round(SCALE / times["timer"]),
        floor_events_per_s=FLOOR_EVENTS_PER_S,
        floor_burst_events_per_s=FLOOR_BURST_EVENTS_PER_S,
    ).timing(benchmark)

    if os.environ.get("REPRO_KERNEL_ENFORCE_FLOOR") == "1":
        assert headline >= FLOOR_EVENTS_PER_S, (
            f"kernel throughput regressed: {headline:,.0f} events/s is "
            f"below the floor of {FLOOR_EVENTS_PER_S:,} (see "
            f"benchmarks/baselines/README.md for the gate policy)"
        )
        assert burst_rate >= FLOOR_BURST_EVENTS_PER_S, (
            f"bucketed dispatch regressed: {burst_rate:,.0f} events/s on "
            f"the same-timestamp burst shape is below the floor of "
            f"{FLOOR_BURST_EVENTS_PER_S:,}"
        )
