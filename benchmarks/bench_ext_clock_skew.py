"""EXT-SKEW — the clock-synchronization error bound ``E``.

Extension beyond the paper's evaluation (its demonstrator had all
processing SWCs on one platform, so ``E = 0``): a two-ECU event chain
whose subscriber clock is skewed relative to the publisher.

Expected shape (asserted): whenever the assumed ``E`` covers the actual
skew (plus the already-covered latency), safe-to-process analysis holds
and no violations occur; whenever the actual skew exceeds the assumed
``E``, every event arrives in the subscriber's logical past and is
counted as a violation — observable, never silent.
"""

from repro.harness import SweepRunner
from repro.harness.extensions import clock_skew_sweep


def test_clock_skew_sweep(benchmark, show, bench_json):
    runner = SweepRunner()
    result = benchmark.pedantic(
        clock_skew_sweep, kwargs={"sweep": runner}, rounds=1, iterations=1
    )
    show(result.render())
    show(runner.stats.summary_line())
    bench_json.sweep(runner).record(
        points=[
            {
                "actual_skew_ns": point.actual_skew_ns,
                "assumed_error_ns": point.assumed_error_ns,
                "stp_violations": point.stp_violations,
            }
            for point in result.points
        ],
    )

    for point in result.points:
        covered = point.assumed_error_ns >= point.actual_skew_ns
        if covered:
            assert point.stp_violations == 0, (
                f"skew {point.actual_skew_ns} covered by E="
                f"{point.assumed_error_ns} must not violate"
            )
        else:
            assert point.stp_violations > 0, (
                f"skew {point.actual_skew_ns} above E="
                f"{point.assumed_error_ns} must be observable"
            )
        # Violations are *observable errors*, not silent losses.
        assert point.delivered == result.count
