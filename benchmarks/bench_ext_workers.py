"""EXT-WORKERS — APG-parallel reaction execution.

The paper: "A reactor runtime scheduler is responsible for
transparently exploiting concurrency in the APG by mapping independent
reactions to separate worker threads."

Expected shape (asserted): for a fan of independent heavy reactions at
one level, physical lag drops from the *sum* of their costs (one
worker) towards the *max* (enough workers), while the logical trace is
bit-identical for every worker count.
"""

from repro.analysis.report import render_table
from repro.reactors import Environment, Reactor
from repro.sim import World
from repro.sim.platform import PlatformConfig
from repro.time import MS


BRANCHES = 4
COST = 10 * MS


def run_with_workers(workers: int):
    world = World(0)
    platform = world.add_platform(
        "p", PlatformConfig(num_cores=8, dispatch_jitter_ns=0, timer_jitter_ns=0)
    )
    env = Environment(timeout=400 * MS)

    class Source(Reactor):
        def __init__(self, name, owner):
            super().__init__(name, owner)
            self.out = self.output("out")
            tick = self.timer("tick", offset=0, period=100 * MS)
            self.reaction("emit", triggers=[tick], effects=[self.out],
                          body=lambda ctx: ctx.set(self.out, 1))

    class Branch(Reactor):
        def __init__(self, name, owner):
            super().__init__(name, owner)
            self.inp = self.input("inp")
            self.out = self.output("out")
            self.reaction(
                "work", triggers=[self.inp], effects=[self.out],
                body=lambda ctx: ctx.set(self.out, ctx.get(self.inp)),
                exec_time=COST,
            )

    class Sink(Reactor):
        def __init__(self, name, owner):
            super().__init__(name, owner)
            self.inputs = [self.input(f"in{i}") for i in range(BRANCHES)]
            self.lags = []
            self.reaction("collect", triggers=self.inputs,
                          body=lambda ctx: self.lags.append(ctx.lag()))

    source = Source("source", env)
    sink = Sink("sink", env)
    for index in range(BRANCHES):
        branch = Branch(f"b{index}", env)
        env.connect(source.out, branch.inp)
        env.connect(branch.out, sink.inputs[index])
    env.start(platform, workers=workers)
    world.run_for(2_000 * MS)
    mean_lag = sum(sink.lags) / len(sink.lags)
    return mean_lag, env.trace.fingerprint()


def sweep():
    return {workers: run_with_workers(workers) for workers in (1, 2, 4)}


def test_worker_scaling(benchmark, show, bench_json):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    bench_json.record(
        mean_lag_ns_by_workers={
            str(workers): lag for workers, (lag, _fp) in sorted(results.items())
        },
    )
    rows = [
        [str(workers), f"{lag / 1e6:.1f} ms"]
        for workers, (lag, _fp) in sorted(results.items())
    ]
    show(render_table(
        ["workers", "sink lag (4 branches x 10 ms)"],
        rows,
        title="EXT-WORKERS - APG-parallel execution:",
    ))

    lag1, fp1 = results[1]
    lag2, fp2 = results[2]
    lag4, fp4 = results[4]
    # Sum -> half -> max as workers increase.
    assert lag1 >= BRANCHES * COST
    assert (BRANCHES // 2) * COST <= lag2 < lag1
    assert COST <= lag4 < lag2
    assert lag4 < 2 * COST
    # Logical behaviour is identical regardless of worker count.
    assert fp1 == fp2 == fp4
