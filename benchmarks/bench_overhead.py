"""OVERHEAD — the cost (and benefit) of determinism.

Paper claim: DEAR's benefits "come at the cost of an extra physical time
delay as each SWC needs to account for worst case computation and
communication delays"; in exchange, worst-case end-to-end latency
becomes analyzable.

Expected shape (asserted): the DEAR pipeline's latency is tightly
clustered (max-mean spread small, bounded by the deadline chain) while
the stock pipeline — whose per-hop cost is up to a full polling period —
shows both a *higher mean* latency and lost frames.  The trade the paper
describes is a latency *floor* (the deadline budget), which we verify
the DEAR latency respects from below as well.
"""

from repro.apps.brake import BrakeScenario
from repro.harness import SweepRunner, env_int
from repro.harness.figures import overhead


def test_overhead(benchmark, show, bench_json):
    n_frames = env_int("REPRO_OVERHEAD_FRAMES", 400)
    runner = SweepRunner()
    result = benchmark.pedantic(
        overhead, kwargs={"n_frames": n_frames, "sweep": runner},
        rounds=1, iterations=1,
    )
    show(result.render())
    show(runner.stats.summary_line())
    bench_json.sweep(runner).record(
        frames=n_frames,
        dear_latency_mean_ns=result.dear_latency.mean,
        stock_latency_mean_ns=result.stock_latency.mean,
        dear_frames_out=result.dear_frames_out,
        stock_frames_out=result.stock_frames_out,
    )

    scenario = BrakeScenario()
    release = scenario.latency_bound_ns + scenario.clock_error_ns
    # DEAR's latency floor: the full deadline + safe-to-process budget up
    # to the EBA stage (its logical release point).
    floor = (
        scenario.adapter_deadline_ns
        + scenario.preprocessing_deadline_ns
        + scenario.computer_vision_deadline_ns
        + 3 * release
    )
    assert result.dear_latency.minimum >= floor
    # ...and ceiling: floor plus the EBA deadline and slack.
    assert result.dear_latency.maximum <= floor + scenario.eba_deadline_ns + 5_000_000
    # DEAR answers every frame; the stock pipeline does not always.
    assert result.dear_frames_out == result.n_frames
    assert result.stock_frames_out <= result.n_frames
    # Stock polling latency: around half a period per hop on average --
    # far above DEAR's deadline chain in this configuration.
    assert result.stock_latency.mean > result.dear_latency.mean
