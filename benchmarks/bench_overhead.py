"""OVERHEAD — the cost (and benefit) of determinism.

Paper claim: DEAR's benefits "come at the cost of an extra physical time
delay as each SWC needs to account for worst case computation and
communication delays"; in exchange, worst-case end-to-end latency
becomes analyzable.

Expected shape (asserted): the DEAR pipeline's latency is tightly
clustered (max-mean spread small, bounded by the deadline chain) while
the stock pipeline — whose per-hop cost is up to a full polling period —
shows both a *higher mean* latency and lost frames.  The trade the paper
describes is a latency *floor* (the deadline budget), which we verify
the DEAR latency respects from below as well.
"""

import time

from repro import obs
from repro.apps.brake import BrakeScenario
from repro.apps.brake.det import run_det_brake_assistant
from repro.harness import SweepRunner, env_int
from repro.harness.figures import overhead
from repro.obs import context as obs_context


def test_overhead(benchmark, show, bench_json):
    n_frames = env_int("REPRO_OVERHEAD_FRAMES", 400)
    runner = SweepRunner()
    result = benchmark.pedantic(
        overhead, kwargs={"n_frames": n_frames, "sweep": runner},
        rounds=1, iterations=1,
    )
    show(result.render())
    show(runner.stats.summary_line())
    bench_json.sweep(runner).record(
        frames=n_frames,
        dear_latency_mean_ns=result.dear_latency.mean,
        stock_latency_mean_ns=result.stock_latency.mean,
        dear_frames_out=result.dear_frames_out,
        stock_frames_out=result.stock_frames_out,
    )

    scenario = BrakeScenario()
    release = scenario.latency_bound_ns + scenario.clock_error_ns
    # DEAR's latency floor: the full deadline + safe-to-process budget up
    # to the EBA stage (its logical release point).
    floor = (
        scenario.adapter_deadline_ns
        + scenario.preprocessing_deadline_ns
        + scenario.computer_vision_deadline_ns
        + 3 * release
    )
    assert result.dear_latency.minimum >= floor
    # ...and ceiling: floor plus the EBA deadline and slack.
    assert result.dear_latency.maximum <= floor + scenario.eba_deadline_ns + 5_000_000
    # DEAR answers every frame; the stock pipeline does not always.
    assert result.dear_frames_out == result.n_frames
    assert result.stock_frames_out <= result.n_frames
    # Stock polling latency: around half a period per hop on average --
    # far above DEAR's deadline chain in this configuration.
    assert result.stock_latency.mean > result.dear_latency.mean


def test_obs_disabled_overhead(show, bench_json):
    """Observability off must cost ~nothing — and on, must change nothing.

    The disabled path at every instrumented site is one module-global
    load plus one attribute check; measured here directly, and the
    enabled/disabled wall-time ratio of a full run is recorded to
    ``BENCH_obs_disabled_overhead.json`` for trajectory tracking.
    """
    # Micro-cost of the guard idiom itself (generous bound: far below
    # 1 µs per site even on a loaded CI runner).
    iterations = 200_000
    started = time.perf_counter()
    for _ in range(iterations):
        o = obs_context.ACTIVE
        if o.enabled:  # pragma: no cover - disabled in this loop
            raise AssertionError("obs unexpectedly enabled")
    per_guard_ns = (time.perf_counter() - started) / iterations * 1e9

    frames = env_int("REPRO_OBS_FRAMES", 120)
    scenario = BrakeScenario(n_frames=frames)
    started = time.perf_counter()
    baseline = run_det_brake_assistant(0, scenario)
    disabled_s = time.perf_counter() - started
    started = time.perf_counter()
    with obs.capture() as observation:
        observed = run_det_brake_assistant(0, scenario)
    enabled_s = time.perf_counter() - started

    show(
        f"obs overhead: guard {per_guard_ns:.0f} ns/site, "
        f"disabled {disabled_s:.2f}s vs enabled {enabled_s:.2f}s "
        f"({len(observation.bus)} events recorded)"
    )
    bench_json.record(
        frames=frames,
        guard_ns_per_site=round(per_guard_ns, 1),
        disabled_wall_s=round(disabled_s, 3),
        enabled_wall_s=round(enabled_s, 3),
        enabled_over_disabled=round(enabled_s / disabled_s, 3),
        events_recorded=len(observation.bus),
        metrics_recorded=len(observation.metrics),
    )
    assert per_guard_ns < 1_000  # the disabled path costs ~nothing
    # The headline invariant, at benchmark scale: identical fingerprints.
    assert dict(baseline.trace_fingerprints) == dict(observed.trace_fingerprints)
    assert len(observation.bus) > 0
