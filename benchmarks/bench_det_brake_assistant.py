"""DET — reproduce Section IV.B: the deterministic brake assistant.

Paper claims: with deadlines 5/25/25/5 ms and an assumed communication
latency of 5 ms (no clock error on a single platform), the DEAR
implementation achieves "correct and deterministic execution" — zero
dropped frames, zero mismatches — and its timed semantics bounds the
end-to-end latency from frame reception to brake signal.

Expected shape (asserted): zero errors and zero assumption violations
for every seed; identical brake commands across seeds; identical logical
traces with a deterministic camera; output equal to the ideal-pipeline
oracle; end-to-end latency within the deadline/STP budget.

Scale knobs: ``REPRO_DET_SEEDS`` (default 5), ``REPRO_DET_FRAMES``
(default 500).
"""

from repro.apps.brake import BrakeScenario
from repro.harness import SweepRunner, env_int
from repro.harness.figures import det_case_study


def test_det_case_study(benchmark, show, bench_json):
    n_seeds = env_int("REPRO_DET_SEEDS", 5)
    n_frames = env_int("REPRO_DET_FRAMES", 500)
    runner = SweepRunner()
    result = benchmark.pedantic(
        det_case_study, args=(n_seeds, n_frames), kwargs={"sweep": runner},
        rounds=1, iterations=1,
    )
    show(result.render())
    show(runner.stats.summary_line())
    bench_json.sweep(runner).record(
        seeds=n_seeds,
        frames=n_frames,
        errors_total=result.total_errors(),
        violations_total=result.total_violations(),
        latency_max_ns=result.latency.maximum,
    )

    assert result.total_errors() == 0
    assert result.total_violations() == 0
    assert result.commands_identical
    assert result.traces_identical
    assert result.oracle_perfect

    scenario = BrakeScenario()
    release = scenario.latency_bound_ns + scenario.clock_error_ns
    budget = (
        scenario.adapter_deadline_ns
        + scenario.preprocessing_deadline_ns
        + scenario.computer_vision_deadline_ns
        + scenario.eba_deadline_ns
        + 3 * release
        + 5_000_000  # scheduling slack
    )
    assert result.latency.maximum <= budget
