"""EXT-DIST — the brake assistant distributed across processing ECUs.

Extension of Section IV.B: the paper notes "Since all SWCs of this
application are deployed to the same platform, there is no clock
synchronization error to account for."  This bench deploys Computer
Vision and EBA on a second processing ECU with a skewed clock and
sweeps (skew, assumed E).

Expected shape (asserted): perfect execution whenever E covers the skew
(and even for small skews with E = 0, absorbed by the pipeline's
safe-to-process slack); for large uncovered skews, counted STP
violations, mismatches and lost frames — degradation is observable,
never silent.
"""

from functools import partial

from repro.apps.brake import BrakeScenario, run_det_brake_assistant
from repro.analysis.report import render_table
from repro.harness import SweepRunner, env_int
from repro.time import MS


def _point(configuration, n_frames):
    skew, error = configuration
    scenario = BrakeScenario(
        n_frames=n_frames,
        distributed=True,
        processing_clock_skew_ns=skew,
        clock_error_ns=error,
    )
    return run_det_brake_assistant(0, scenario)


def sweep(n_frames, runner=None):
    configurations = [
        (0, 0),
        (5 * MS, 0),
        (15 * MS, 0),
        (20 * MS, 0),
        (20 * MS, 25 * MS),
    ]
    runner = runner or SweepRunner()
    runs = runner.map(
        partial(_point, n_frames=n_frames),
        configurations,
        name="ext-dist-bench",
        params={"n_frames": n_frames},
    )
    return [(skew, error, run) for (skew, error), run in zip(configurations, runs)]


def test_distributed_brake_assistant(benchmark, show, bench_json):
    n_frames = env_int("REPRO_DIST_FRAMES", 200)
    runner = SweepRunner()
    rows = benchmark.pedantic(
        sweep, args=(n_frames,), kwargs={"runner": runner},
        rounds=1, iterations=1,
    )
    bench_json.sweep(runner).record(
        frames=n_frames,
        configurations=[
            {
                "skew_ns": skew,
                "assumed_error_ns": error,
                "stp_violations": run.stp_violations,
                "errors_total": run.errors.total(),
                "frames_answered": len(run.commands),
            }
            for skew, error, run in rows
        ],
    )
    table = render_table(
        ["clock skew", "assumed E", "STP violations", "CV mismatches",
         "frames answered"],
        [
            [
                f"{skew / 1e6:.0f} ms",
                f"{error / 1e6:.0f} ms",
                str(run.stp_violations),
                str(run.errors.mismatch_computer_vision),
                f"{len(run.commands)}/{n_frames}",
            ]
            for skew, error, run in rows
        ],
        title="EXT-DIST - distributed brake assistant vs. clock skew:",
    )
    show(table)
    show(runner.stats.summary_line())

    by_config = {(skew, error): run for skew, error, run in rows}
    # Covered (or slack-absorbed) configurations: perfect.
    for key in ((0, 0), (5 * MS, 0), (20 * MS, 25 * MS)):
        run = by_config[key]
        assert run.stp_violations == 0
        assert run.errors.total() == 0
        assert len(run.commands) == n_frames
    # Large uncovered skews: observable degradation, worse with skew.
    mid, big = by_config[(15 * MS, 0)], by_config[(20 * MS, 0)]
    assert mid.stp_violations > 0
    assert big.stp_violations >= mid.stp_violations
    assert len(big.commands) < len(mid.commands) < n_frames
