"""FAULTS-OVERHEAD — the no-faults fast path must cost ~nothing.

The injector sits behind a single attribute load on ``Switch.send``
(``self._faults`` is ``None`` unless a plan is installed), so a
fault-capable build must not tax fault-free experiments.  Measured
three ways and recorded to ``BENCH_faults_overhead.json``:

* the guard idiom itself, micro-benchmarked per frame;
* a full det brake run with no plan vs. one with an installed plan
  whose probabilities are all zero (the injector is consulted per
  frame but never fires);
* the same run with an actively firing plan, for the trajectory.

Only the stable claims are asserted (guard cost, unperturbed results);
wall-time ratios are recorded, not gated — a regression shows up as a
trajectory change across commits, not a flaky red build.
"""

import time

from repro.apps.brake import BrakeScenario
from repro.apps.brake.det import run_det_brake_assistant
from repro.faults import FaultPlan, LinkFault
from repro.harness import env_int


def test_faults_overhead(show, bench_json):
    # Micro-cost of the seam: one attribute load + None check per frame.
    class _Seam:
        _faults = None

    seam = _Seam()
    iterations = 200_000
    started = time.perf_counter()
    for _ in range(iterations):
        if seam._faults is not None:  # pragma: no cover - no plan installed
            raise AssertionError("unexpected injector")
    per_frame_ns = (time.perf_counter() - started) / iterations * 1e9

    frames = env_int("REPRO_FAULTS_FRAMES", 120)
    scenario = BrakeScenario(n_frames=frames, deterministic_camera=True)
    inert_plan = FaultPlan(
        seed=5, link_faults=(LinkFault(dst_port=15000, drop_probability=0.0),)
    )
    active_plan = FaultPlan.camera_faults(seed=7, drop=0.1, label="bench")

    started = time.perf_counter()
    baseline = run_det_brake_assistant(0, scenario)
    baseline_s = time.perf_counter() - started
    started = time.perf_counter()
    inert = run_det_brake_assistant(0, scenario, fault_plan=inert_plan)
    inert_s = time.perf_counter() - started
    started = time.perf_counter()
    active = run_det_brake_assistant(0, scenario, fault_plan=active_plan)
    active_s = time.perf_counter() - started

    show(
        f"faults overhead: seam {per_frame_ns:.0f} ns/frame, "
        f"no plan {baseline_s:.2f}s, inert plan {inert_s:.2f}s, "
        f"active plan {active_s:.2f}s ({active.fault_summary['fired']} fired)"
    )
    bench_json.record(
        frames=frames,
        seam_ns_per_frame=round(per_frame_ns, 1),
        no_plan_wall_s=round(baseline_s, 3),
        inert_plan_wall_s=round(inert_s, 3),
        active_plan_wall_s=round(active_s, 3),
        inert_over_no_plan=round(inert_s / baseline_s, 3),
        active_over_no_plan=round(active_s / baseline_s, 3),
        faults_fired=active.fault_summary["fired"],
    )
    # Stable claims only: the fast path is a None check...
    assert per_frame_ns < 1_000
    # ...and a never-firing injector perturbs nothing at all.
    assert inert.fault_summary["fired"] == 0
    assert inert.trace_fingerprints == baseline.trace_fingerprints
    assert inert.commands == baseline.commands
    assert inert.latencies_ns == baseline.latencies_ns
    assert baseline.fault_summary is None
