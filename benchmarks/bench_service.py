"""SERVICE — sweep-service latency, queue and store throughput.

Measures the three surfaces of the distributed sweep service
(``repro.service``) and records them to ``BENCH_service.json``:

* ``store_put_per_s`` / ``store_get_per_s`` — content-addressed
  result-store append and lookup throughput (the shared-filesystem
  hot path: one fcntl-locked fsync'd write per append);
* ``queue_jobs_per_s`` — coordinator lease/complete round-trips per
  second with a stub executor, isolating pure queue overhead from
  simulation cost;
* ``cached_submit_roundtrip_s`` — submit→result wall time for a fully
  cached campaign over real loopback HTTP (the "resubmission is a
  pure cache hit" path end to end);
* ``campaign_seeds_per_s`` — a real brake campaign through
  ``LocalService`` (HTTP coordinator + worker threads).

Correctness is asserted inline — ``distributed_equals_local`` is the
per-seed byte-identical merge check against ``SweepRunner.run_spec``;
a fast wrong answer is not a benchmark result.
"""

import pickle
import time

from repro.apps.brake.scenario import BrakeScenario
from repro.harness import ScenarioSpec, SweepRunner, env_int
from repro.service import (
    Coordinator,
    CoordinatorConfig,
    LocalClient,
    LocalService,
    ResultStore,
    Worker,
)


def _stub_execute(job):
    return [
        {
            "seed": seed,
            "encoding": "json",
            "payload": seed,
            "error": None,
            "cached": False,
            "elapsed_s": 0.0,
        }
        for seed in job["seeds"]
    ]


def test_service(show, bench_json, tmp_path):
    store_records = env_int("REPRO_SVC_RECORDS", 200)
    queue_jobs = env_int("REPRO_SVC_JOBS", 40)
    frames = env_int("REPRO_SVC_FRAMES", 30)
    seeds = tuple(range(env_int("REPRO_SVC_SEEDS", 8)))

    # -- store append / fetch throughput -------------------------------------
    store = ResultStore(tmp_path / "store-bench")
    keys = [f"{index:032x}" for index in range(store_records)]
    started = time.perf_counter()
    for index, key in enumerate(keys):
        store.put(key, index, {"seed": index, "value": [index] * 8})
    put_wall = time.perf_counter() - started
    started = time.perf_counter()
    for key in keys:
        assert store.get(key) is not None
    get_wall = time.perf_counter() - started

    # -- queue throughput (stub executor: pure coordinator overhead) ---------
    config = CoordinatorConfig(chunk_size=1)
    coordinator = Coordinator(ResultStore(tmp_path / "queue-bench"), config)
    client = LocalClient(coordinator)
    spec = ScenarioSpec(
        variant="det",
        seeds=tuple(range(queue_jobs)),
        scenario=BrakeScenario(n_frames=frames),
        label="bench-queue",
    )
    status = client.submit(spec)
    worker = Worker(client, poll_interval_s=0.001, execute=_stub_execute)
    started = time.perf_counter()
    completed = worker.run(max_jobs=queue_jobs)
    queue_wall = time.perf_counter() - started
    assert completed == queue_jobs
    assert client.result(status["campaign"])["status"] == "done"

    # -- a real campaign over loopback HTTP, checked against local -----------
    campaign_spec = ScenarioSpec(
        variant="det",
        seeds=seeds,
        scenario=BrakeScenario(n_frames=frames),
        label="bench-campaign",
    )
    reference = SweepRunner(workers=1, use_cache=False).run_spec(
        campaign_spec
    ).values()
    with LocalService(tmp_path / "svc-store", workers=2) as service:
        started = time.perf_counter()
        values = service.run_spec(campaign_spec)
        campaign_wall = time.perf_counter() - started
        equals_local = len(values) == len(reference) and all(
            pickle.dumps(a) == pickle.dumps(b)
            for a, b in zip(values, reference)
        )
        # resubmission: every seed served from the shared store.
        started = time.perf_counter()
        again = service.submit_and_wait(campaign_spec)
        cached_roundtrip = time.perf_counter() - started
    assert equals_local
    assert again["cached"] == len(seeds)
    assert again["pending"] == 0

    bench_json.record(
        store_records=store_records,
        store_put_per_s=round(store_records / put_wall, 2),
        store_get_per_s=round(store_records / get_wall, 2),
        queue_jobs=queue_jobs,
        queue_jobs_per_s=round(queue_jobs / queue_wall, 2),
        campaign_seeds=len(seeds),
        campaign_frames=frames,
        campaign_seeds_per_s=round(len(seeds) / campaign_wall, 2),
        cached_submit_roundtrip_s=round(cached_roundtrip, 4),
        cached_hits=again["cached"],
        distributed_equals_local=equals_local,
    )
    show(
        "sweep service: "
        f"store {store_records / put_wall:,.0f} put/s, "
        f"{store_records / get_wall:,.0f} get/s | "
        f"queue {queue_jobs / queue_wall:,.0f} jobs/s | "
        f"campaign {len(seeds) / campaign_wall:.1f} seeds/s "
        f"(distributed == local: {equals_local}) | "
        f"cached resubmit {cached_roundtrip * 1000:.1f} ms"
    )
