"""FIG1 — reproduce Figure 1: the nondeterministic client/server app.

Paper artifact: a histogram of the value printed by the client of the
naive counter application; each of 0, 1, 2, 3 occurs with sizeable
probability on the stock platform, while the intended result is 3.

Expected shape (asserted): multiple distinct outcomes on stock AP, no
outcome with probability 1, wrong results present; the DEAR variant
prints 3 every time.

Scale knobs: ``REPRO_FIG1_SEEDS`` (default 200).
"""

from repro.harness import SweepRunner, env_int
from repro.harness.figures import figure1


def test_figure1(benchmark, show, bench_json):
    n_seeds = env_int("REPRO_FIG1_SEEDS", 200)
    runner = SweepRunner()
    result = benchmark.pedantic(
        figure1, args=(n_seeds,), kwargs={"det_seeds": 8, "sweep": runner},
        rounds=1, iterations=1,
    )
    show(result.render())
    show(runner.stats.summary_line())

    probabilities = result.probabilities()
    bench_json.sweep(runner).record(
        seeds=n_seeds,
        probabilities={str(k): v for k, v in sorted(probabilities.items())},
    )
    # All observed outcomes are legal interleavings of {set, add, get}.
    assert set(probabilities) <= {0, 1, 2, 3}
    # The program has several behaviours...
    assert len(probabilities) >= 2
    # ...none of which is certain,
    assert max(probabilities.values()) < 1.0
    # and the intended result is among them but not guaranteed.
    assert 3 in probabilities
    assert sum(v for k, v in probabilities.items() if k != 3) > 0
    # DEAR: exactly one behaviour, the intended one.
    assert set(result.det_counts) == {3}
