"""Runtime microbenchmarks (proper repeated-measurement benchmarks).

Not a paper artifact; characterizes the reproduction's substrate so
regressions in the simulator, the reactor scheduler and the SOME/IP
stack are visible.  These use pytest-benchmark's normal repetition.
"""

from repro.reactors import Environment, Reactor
from repro.sim import Compute, World
from repro.sim.platform import CALM
from repro.someip import MessageType, SomeIpHeader, SomeIpMessage
from repro.someip.serialization import Array, INT32, Struct, UINT32
from repro.time import MS, US

# The bare-kernel event-throughput benchmark moved to bench_sim_kernel.py
# (per-shape rates + the floor gate used by CI's kernel-throughput job).


def test_thread_context_switching(benchmark, bench_json):
    """Cost of compute-yield cycles through the CPU scheduler."""

    def run():
        world = World(0)
        platform = world.add_platform("p", CALM)
        done = []

        def body():
            for _ in range(200):
                yield Compute(1 * US)
            done.append(1)

        for index in range(5):
            platform.spawn(f"t{index}", body())
        world.run_to_completion()
        return len(done)

    assert benchmark(run) == 5
    bench_json.record(threads=5, switches_per_thread=200).timing(benchmark)


def test_reactor_fast_mode_throughput(benchmark, bench_json):
    """Events-per-second of the reactor scheduler in fast mode."""

    def run():
        env = Environment(timeout=1_000 * MS, trace_enabled=False)

        class Chain(Reactor):
            def __init__(self, name, owner):
                super().__init__(name, owner)
                self.inp = self.input("inp")
                self.out = self.output("out")
                self.reaction(
                    "fwd",
                    triggers=[self.inp],
                    effects=[self.out],
                    body=lambda ctx: ctx.set(self.out, ctx.get(self.inp)),
                )

        class Source(Reactor):
            def __init__(self, name, owner):
                super().__init__(name, owner)
                self.out = self.output("out")
                tick = self.timer("tick", offset=0, period=1 * MS)
                self.reaction(
                    "emit", triggers=[tick], effects=[self.out],
                    body=lambda ctx: ctx.set(self.out, 1),
                )

        source = Source("source", env)
        stages = [Chain(f"stage{i}", env) for i in range(10)]
        env.connect(source.out, stages[0].inp)
        for left, right in zip(stages, stages[1:]):
            env.connect(left.out, right.inp)
        env.execute()
        return env.scheduler.reactions_executed

    reactions = benchmark(run)
    bench_json.record(reactions=reactions).timing(benchmark)
    assert reactions > 10_000


def test_someip_message_roundtrip(benchmark, bench_json):
    """Pack + unpack of a realistic SOME/IP message."""
    spec = Struct([("seq", UINT32), ("values", Array(INT32))])
    payload = spec.to_bytes({"seq": 7, "values": list(range(64))})
    header = SomeIpHeader(
        service_id=0x1234, method_id=0x8001, client_id=0, session_id=9,
        message_type=MessageType.NOTIFICATION,
    )

    def run():
        packed = SomeIpMessage(header, payload).pack()
        message = SomeIpMessage.unpack(packed)
        return spec.from_bytes(message.payload)["seq"]

    assert benchmark(run) == 7
    bench_json.record().timing(benchmark)
