"""LET — Section V: the logical-execution-time baseline.

Paper claim: LET achieves determinism in AUTOSAR CP but quantizes
logical time to task periods — "LET tasks always take a non-zero amount
of logical time, [while] reactions are logically instantaneous".  On a
pipeline this shows up as one full period of latency per hop.

Expected shape (asserted): the LET brake pipeline is deterministic
across seeds, its end-to-end latency is (pipeline depth) x (period) =
200 ms, and the DEAR chain beats it by roughly the ratio of the deadline
budget to the period chain (~2.5x here).
"""

from repro.harness import SweepRunner, env_int
from repro.harness.figures import let_baseline
from repro.time import MS


def test_let_baseline(benchmark, show, bench_json):
    n_frames = env_int("REPRO_LET_FRAMES", 300)
    runner = SweepRunner()
    result = benchmark.pedantic(
        let_baseline, kwargs={"n_frames": n_frames, "sweep": runner},
        rounds=1, iterations=1,
    )
    show(result.render())
    show(runner.stats.summary_line())
    bench_json.sweep(runner).record(
        frames=n_frames,
        let_latency_mean_ns=result.let_latency.mean,
        dear_latency_mean_ns=result.dear_latency.mean,
    )

    assert result.deterministic
    # Four 50 ms hops: exactly 200 ms for every frame.
    assert result.let_latency.minimum == result.let_latency.maximum == 200 * MS
    # Reactors' deadline chain is well below the period chain.
    assert result.dear_latency.mean < result.let_latency.mean * 0.5
