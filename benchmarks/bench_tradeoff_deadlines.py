"""TRADEOFF — Section IV.B's discussion: deadlines vs. errors vs. latency.

Paper claim: deadlines must cover each SWC's WCET for guaranteed-correct
execution; setting them lower deliberately trades sporadic *observable*
errors for lower end-to-end latency, and "the trade-off between
end-to-end latency and error rate becomes apparent".

Expected shape (asserted): with deadlines above the heavy stages' WCET
(21 ms) there are no violations and no lost frames; below it,
violations and losses appear and grow as the deadline shrinks; the
end-to-end latency grows monotonically with the deadline budget.
"""

from repro.harness import SweepRunner, env_int
from repro.harness.figures import tradeoff
from repro.time import MS


def test_deadline_tradeoff(benchmark, show, bench_json):
    n_frames = env_int("REPRO_TRADEOFF_FRAMES", 300)
    runner = SweepRunner()
    result = benchmark.pedantic(
        tradeoff, kwargs={"n_frames": n_frames, "sweep": runner},
        rounds=1, iterations=1,
    )
    show(result.render())
    show(runner.stats.summary_line())
    bench_json.sweep(runner).record(
        frames=n_frames,
        points=[
            {
                "deadline_ns": point.deadline_ns,
                "deadline_misses": point.deadline_misses,
                "frames_lost": point.frames_lost,
                "latency_mean_ns": point.latency_mean_ns,
            }
            for point in result.points
        ],
    )

    by_deadline = {point.deadline_ns: point for point in result.points}
    # Sound deadlines (>= WCET 21 ms): zero violations, zero loss.
    for deadline, point in by_deadline.items():
        if deadline >= 22 * MS:
            assert point.deadline_misses == 0
            assert point.frames_lost == 0
    # Unsound deadlines: violations appear...
    assert by_deadline[15 * MS].deadline_misses > 0
    assert by_deadline[15 * MS].frames_lost > 0
    # ...and get worse as the deadline shrinks.
    misses = [p.deadline_misses for p in result.points]
    assert misses == sorted(misses, reverse=True)
    # Latency grows with the deadline budget (among lossless points).
    lossless = [p for p in result.points if p.frames_lost == 0]
    latencies = [p.latency_mean_ns for p in lossless]
    assert latencies == sorted(latencies)
