"""SNAPSHOT — copy-on-write forks must beat from-scratch replay ≥ 3×.

The campaign mirrors how explore/ddmin actually spend their budget: N
PCT-style schedules sharing an identical 80% preemption prefix and
diverging only in one tail point.  From scratch every run costs O(T);
through the snapshot engine run 0 captures holders along the prefix and
every later run forks the deepest shared-prefix holder, paying only its
own suffix — O(ΔT).  Recorded to ``BENCH_snapshot.json``:

* ``capture_mean_ns`` / ``fork_mean_ns`` — raw engine latencies;
* ``scratch_wall_s`` vs ``forked_wall_s`` over the *same* N-1 warm
  schedules, and their ``forked_runtime_over_scratch`` ratio (the
  gated trajectory: if forks stop paying off, this grows);
* ``speedup_ge_3x`` — the ISSUE's hard acceptance claim, asserted;
* a ddmin shrink pass routed through the engine: probe count, fork
  hits and the fraction of decision-span actually re-executed
  (``shrink_replay_ratio`` — the satellite fix: probes no longer
  re-run the full prefix).

Fork equivalence itself is asserted per run (forked summaries must
equal scratch summaries bit-for-bit) — a fast wrong answer is not a
benchmark result.
"""

import time

import pytest

from repro.apps.brake.nondet import run_nondet_brake_assistant
from repro.explore import calibration_scenario, shrink_schedule
from repro.explore.decisions import InterventionSchedule, PreemptionPoint
from repro.explore.explorer import Explorer
from repro.harness import env_int
from repro.sim.rng import stream_hooks
from repro.snapshot import SNAPSHOTS_SUPPORTED, ScheduleDecisions, SnapshotEngine
from repro.time import MS


def _run_scratch(scenario, schedule):
    controller = schedule.controller()
    with stream_hooks(controller):
        result = run_nondet_brake_assistant(schedule.base_seed, scenario)
    return result.outcome_digest()


def test_snapshot(show, bench_json):
    if not SNAPSHOTS_SUPPORTED:
        pytest.skip("snapshot engine needs os.fork + SEQPACKET")

    frames = env_int("REPRO_SNAP_FRAMES", 150)
    runs = env_int("REPRO_SNAP_RUNS", 12)
    scenario = calibration_scenario(frames)

    # Horizon calibration: one plain baseline run.
    baseline = InterventionSchedule(base_seed=0)
    controller = baseline.controller()
    with stream_hooks(controller):
        run_nondet_brake_assistant(0, scenario)
    horizon = controller._site

    # The campaign: an identical 3-point prefix ending at 0.8·horizon,
    # plus one distinct tail point per run in (0.8, 0.95)·horizon.
    shared = tuple(
        PreemptionPoint(site=int(horizon * frac), delay_ns=2 * MS)
        for frac in (0.2, 0.5, 0.8)
    )
    step = max(1, int(horizon * 0.01))
    schedules = [
        InterventionSchedule(
            base_seed=0,
            preemptions=shared
            + (
                PreemptionPoint(
                    site=int(horizon * 0.82) + index * step, delay_ns=3 * MS
                ),
            ),
        )
        for index in range(runs)
    ]

    engine = SnapshotEngine(write_ledger=False)

    def forked(schedule):
        def run(checkpointer):
            ctl = schedule.controller(checkpointer=checkpointer)
            with stream_hooks(ctl):
                result = run_nondet_brake_assistant(schedule.base_seed, scenario)
            return result.outcome_digest()

        return engine.execute("bench", ScheduleDecisions(schedule), run)

    try:
        # Run 0 is the cold capture pass; warm runs 1..N-1 are timed.
        digest0 = forked(schedules[0])
        assert digest0 == _run_scratch(scenario, schedules[0])
        capture_ns_mean = engine.stats.capture_ns_mean

        started = time.perf_counter()
        forked_digests = [forked(s) for s in schedules[1:]]
        forked_s = time.perf_counter() - started
        fork_hits = engine.stats.fork_hits
        fork_ns_mean = engine.stats.fork_ns_mean

        started = time.perf_counter()
        scratch_digests = [_run_scratch(scenario, s) for s in schedules[1:]]
        scratch_s = time.perf_counter() - started

        assert forked_digests == scratch_digests  # equivalence before speed
        assert fork_hits == runs - 1  # every warm run found a holder

        # The satellite-6 fix, measured: ddmin probes fork instead of
        # re-running the prefix.  Synthetic, deterministic predicate —
        # the failure "needs" the 2nd and 4th points.
        needed = {shared[1].site, schedules[0].preemptions[-1].site}
        explorer = Explorer(
            scenario=scenario, base_seed=0, strategy=None, snapshots=engine
        )
        before_total = engine.stats.total_decisions
        before_reused = engine.stats.reused_decisions
        before_hits = engine.stats.fork_hits
        shrunk = shrink_schedule(
            explorer,
            schedules[0],
            predicate=lambda o: needed
            <= {p.site for p in o.schedule.preemptions},
        )
        shrink_fork_hits = engine.stats.fork_hits - before_hits
        shrink_span = engine.stats.total_decisions - before_total
        shrink_reused = engine.stats.reused_decisions - before_reused
        shrink_replay_ratio = (
            (shrink_span - shrink_reused) / shrink_span if shrink_span else 1.0
        )
    finally:
        engine.close()

    speedup = scratch_s / forked_s if forked_s else float("inf")
    show(
        f"snapshot: {runs} runs x {frames} frames, horizon {horizon}; "
        f"capture {capture_ns_mean / 1e6:.1f} ms, fork {fork_ns_mean / 1e6:.1f} ms; "
        f"warm scratch {scratch_s:.2f}s vs forked {forked_s:.2f}s "
        f"({speedup:.1f}x); shrink {shrunk.trials} probes, "
        f"{shrink_fork_hits} forked, replay ratio {shrink_replay_ratio:.2f}"
    )
    bench_json.record(
        frames=frames,
        runs=runs,
        horizon=horizon,
        capture_mean_ns=round(capture_ns_mean),
        fork_mean_ns=round(fork_ns_mean),
        scratch_wall_s=round(scratch_s, 3),
        forked_wall_s=round(forked_s, 3),
        forked_runtime_over_scratch=round(forked_s / scratch_s, 4),
        forked_runs_per_s=round((runs - 1) / forked_s, 2),
        scratch_runs_per_s=round((runs - 1) / scratch_s, 2),
        fork_hits=fork_hits,
        speedup_ge_3x=bool(speedup >= 3.0),
        shrink_trials=shrunk.trials,
        shrink_fork_hits=shrink_fork_hits,
        shrink_replay_ratio=round(shrink_replay_ratio, 4),
        shrink_reuse_ok=bool(shrink_reused > 0),
    )
    # The ISSUE's acceptance claims, asserted as stable facts.
    assert speedup >= 3.0
    assert {p.site for p in shrunk.minimal.preemptions} == needed
    assert shrink_fork_hits > 0
    assert shrink_replay_ratio < 1.0
