"""EXT-SCALE — DEAR latency composition over pipeline depth.

Extension beyond the paper's evaluation: the paper derives the brake
assistant's latency from its four-stage deadline chain; this bench
verifies the general composition rule on synthetic chains of SWCs —
every hop (one SWC boundary with deadline D, latency bound L, clock
error E) adds exactly ``D + L + E`` of logical latency.

Expected shape (asserted): measured logical latency equals
``depth x (D + L + E)`` for every depth.
"""

from repro.harness import SweepRunner
from repro.harness.extensions import native_transport_comparison, pipeline_scaling


def test_pipeline_scaling(benchmark, show, bench_json):
    runner = SweepRunner()
    result = benchmark.pedantic(
        pipeline_scaling, kwargs={"sweep": runner}, rounds=1, iterations=1
    )
    show(result.render())
    bench_json.sweep(runner).record(
        latency_by_depth={
            str(point.depth): point.logical_latency_ns
            for point in result.points
        },
    )

    for point in result.points:
        assert point.logical_latency_ns == point.expected_ns
    depths = [point.depth for point in result.points]
    latencies = [point.logical_latency_ns for point in result.points]
    # Strictly linear scaling.
    assert latencies == [depth * result.hop_cost_ns for depth in depths]


def test_native_transport(benchmark, show, bench_json):
    """EXT-NATIVE — the standard extension the paper advocates.

    The native protocol-v2 tag field must behave identically to the
    trailer workaround while costing fewer bytes per message.
    """
    result = benchmark.pedantic(
        native_transport_comparison, kwargs={"sweep": SweepRunner()},
        rounds=1, iterations=1,
    )
    show(result.render())
    bench_json.record(
        native_bytes=result.native_bytes,
        trailer_bytes=result.trailer_bytes,
        behaviour_identical=result.behaviour_identical,
    )
    assert result.behaviour_identical
    assert result.native_bytes < result.trailer_bytes
