"""FIG3 — reproduce Figure 3: the tagged message sequence.

Paper artifact: the 22-step walk of a method call through client/server
transactors, service proxy/skeleton, timestamp bypass and the modified
SOME/IP binding, with tags ``tc -> tc+Dc -> tc+Dc+L+E`` on the request
and ``ts -> ts+Ds -> ts+Ds+L+E`` on the response.

Expected shape (asserted): the observed tags match those formulas
exactly.
"""

from repro.harness.figures import figure3_sequence


def test_figure3_sequence(benchmark, show, bench_json):
    result = benchmark.pedantic(figure3_sequence, rounds=1, iterations=1)
    show(result.render())
    bench_json.record(
        server_tag_ns=result.server_tag_ns, reply_tag_ns=result.reply_tag_ns
    )

    assert result.server_tag_ns == result.expected_server_tag_ns()
    assert result.reply_tag_ns == result.expected_reply_tag_ns()
    assert result.matches_paper_chain()
    # The response can never be logically earlier than the full chain.
    minimum = (
        result.tc_ns
        + result.deadline_c_ns
        + result.deadline_s_ns
        + 2 * result.release_ns
    )
    assert result.reply_tag_ns >= minimum
