"""Unit tests for the brake-assistant data types, scene and logic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.brake.data import (
    BRAKE_SPEC,
    FRAME_SPEC,
    LANE_SPEC,
    VEHICLES_SPEC,
    BrakeCommand,
    DetectedVehicle,
    Frame,
    GroundTruthVehicle,
    LaneBox,
    VehicleList,
    brake_from_wire,
    brake_to_wire,
    frame_from_wire,
    frame_to_wire,
    lane_from_wire,
    lane_to_wire,
    vehicles_from_wire,
    vehicles_to_wire,
)
from repro.apps.brake.instrumentation import OneSlotBuffer
from repro.apps.brake.logic import (
    TTC_THRESHOLD_S,
    decide_brake,
    detect_vehicles,
    oracle_commands,
    preprocess,
)
from repro.apps.brake.vision import SceneGenerator, render_frame
from repro.time import MS

PERIOD = 50 * MS


@pytest.fixture
def generator():
    return SceneGenerator(PERIOD)


class TestScene:
    def test_pure_function_of_seq(self, generator):
        other = SceneGenerator(PERIOD)
        for seq in (0, 17, 399, 5000):
            assert generator.frame(seq) == other.frame(seq)

    def test_variants_differ(self):
        a = SceneGenerator(PERIOD, variant=0).frame(100)
        b = SceneGenerator(PERIOD, variant=1).frame(100)
        assert a != b

    def test_cut_in_enters_lane(self, generator):
        in_lane_frames = 0
        for seq in range(500):
            frame = generator.frame(seq)
            adjacent = frame.vehicles[1]
            if abs(adjacent.lateral_m - frame.lane_center_m) < frame.lane_width_m / 2:
                in_lane_frames += 1
        assert 40 <= in_lane_frames <= 120  # the cut-in window

    def test_braking_required_somewhere(self, generator):
        oracle = oracle_commands(generator, 600)
        braking = [seq for seq, cmd in oracle.items() if cmd.brake]
        assert braking, "scenario must contain emergency situations"
        assert len(braking) < 600 // 2, "braking must be the exception"

    def test_capture_timestamps(self, generator):
        assert generator.frame(3).capture_time_ns == 3 * PERIOD


class TestRenderer:
    def test_image_dimensions_and_dtype(self, generator):
        image = render_frame(generator.frame(0))
        assert image.shape == (48, 64)
        assert image.dtype.name == "uint8"

    def test_lane_markings_present(self, generator):
        image = render_frame(generator.frame(10))
        marking_columns = ((image > 120) & (image < 250)).sum(axis=0)
        assert (marking_columns > 20).sum() >= 2

    def test_vehicles_rendered_as_blobs(self, generator):
        image = render_frame(generator.frame(10))
        assert (image == 255).sum() > 0


class TestLogic:
    def test_preprocess_centers_lane(self, generator):
        frame = generator.frame(42)
        lane = preprocess(frame)
        assert lane.frame_seq == 42
        assert lane.center_m == pytest.approx(frame.lane_center_m)
        assert lane.width_m == pytest.approx(frame.lane_width_m)

    def test_image_preprocess_approximates_closed_form(self, generator):
        frame = generator.frame(42)
        exact = preprocess(frame)
        from_image = preprocess(frame, use_image=True)
        # One image column is ~0.19 m; allow a couple of columns of error.
        assert from_image.center_m == pytest.approx(exact.center_m, abs=0.5)

    def test_detect_only_in_lane_vehicles(self, generator):
        frame = generator.frame(10)  # adjacent vehicle out of lane
        lane = preprocess(frame)
        vehicles = detect_vehicles(frame, lane)
        ids = {vehicle.vehicle_id for vehicle in vehicles.vehicles}
        assert ids == {1}

    def test_detect_cut_in_vehicle(self, generator):
        frame = generator.frame(350)  # inside the cut-in window
        lane = preprocess(frame)
        vehicles = detect_vehicles(frame, lane)
        ids = {vehicle.vehicle_id for vehicle in vehicles.vehicles}
        assert 2 in ids

    def test_stale_lane_can_corrupt_detection(self, generator):
        """The mismatch mechanism: a stale lane box changes the in-lane
        classification somewhere during a boundary crossing."""
        differences = 0
        for seq in range(280, 440):
            frame = generator.frame(seq)
            fresh = detect_vehicles(frame, preprocess(frame))
            stale = detect_vehicles(frame, preprocess(generator.frame(seq - 3)))
            if fresh.vehicles != stale.vehicles:
                differences += 1
        assert differences > 0

    def test_decide_brake_threshold(self):
        near = VehicleList(0, (DetectedVehicle(1, 10.0, 10.0),))  # TTC 1 s
        far = VehicleList(1, (DetectedVehicle(1, 100.0, 10.0),))  # TTC 10 s
        receding = VehicleList(2, (DetectedVehicle(1, 10.0, -5.0),))
        empty = VehicleList(3, ())
        assert decide_brake(near).brake
        assert not decide_brake(far).brake
        assert not decide_brake(receding).brake
        assert not decide_brake(empty).brake

    def test_brake_intensity_scales_with_urgency(self):
        urgent = decide_brake(VehicleList(0, (DetectedVehicle(1, 5.0, 10.0),)))
        mild_ttc = TTC_THRESHOLD_S * 0.9
        mild = decide_brake(
            VehicleList(0, (DetectedVehicle(1, 10.0 * mild_ttc, 10.0),))
        )
        assert urgent.intensity > mild.intensity
        assert 0.0 <= mild.intensity <= 1.0

    def test_oracle_is_deterministic(self, generator):
        assert oracle_commands(generator, 100) == oracle_commands(generator, 100)


finite = st.floats(min_value=-1000, max_value=1000, allow_nan=False)


class TestWireFormats:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.lists(
            st.tuples(st.integers(0, 100), finite, finite, finite), max_size=5
        ),
    )
    @settings(max_examples=50)
    def test_frame_roundtrip(self, seq, vehicles):
        frame = Frame(
            seq=seq,
            capture_time_ns=seq * PERIOD,
            ego_speed_mps=25.0,
            lane_center_m=1.0,
            lane_width_m=3.6,
            vehicles=tuple(GroundTruthVehicle(*v) for v in vehicles),
        )
        data = FRAME_SPEC.to_bytes(frame_to_wire(frame))
        assert frame_from_wire(FRAME_SPEC.from_bytes(data)) == frame

    def test_lane_roundtrip(self):
        lane = LaneBox(7, -1.0, 2.6)
        data = LANE_SPEC.to_bytes(lane_to_wire(lane))
        assert lane_from_wire(LANE_SPEC.from_bytes(data)) == lane

    def test_vehicles_roundtrip(self):
        vehicles = VehicleList(9, (DetectedVehicle(1, 30.0, 5.0),))
        data = VEHICLES_SPEC.to_bytes(vehicles_to_wire(vehicles))
        assert vehicles_from_wire(VEHICLES_SPEC.from_bytes(data)) == vehicles

    def test_brake_roundtrip(self):
        command = BrakeCommand(3, True, 0.5)
        data = BRAKE_SPEC.to_bytes(brake_to_wire(command))
        assert brake_from_wire(BRAKE_SPEC.from_bytes(data)) == command


class TestOneSlotBuffer:
    def test_write_read_cycle(self):
        buffer = OneSlotBuffer("b")
        buffer.write("a")
        assert buffer.read() == "a"
        assert buffer.read() is None
        assert buffer.drops == 0

    def test_overwrite_counts_drop(self):
        buffer = OneSlotBuffer("b")
        buffer.write("a")
        buffer.write("b")
        assert buffer.drops == 1
        assert buffer.read() == "b"

    def test_read_after_read_is_empty(self):
        buffer = OneSlotBuffer("b")
        buffer.write(1)
        buffer.read()
        buffer.write(2)
        assert buffer.drops == 0
