"""Unit tests for hierarchical RNG streams."""

from repro.sim import RngTree


class TestStreams:
    def test_same_name_same_stream_object(self):
        tree = RngTree(1)
        assert tree.stream("a") is tree.stream("a")

    def test_different_names_independent(self):
        tree = RngTree(1)
        a = [tree.stream("a").random() for _ in range(5)]
        b = [tree.stream("b").random() for _ in range(5)]
        assert a != b

    def test_same_seed_reproducible(self):
        first = [RngTree(7).stream("x").random() for _ in range(3)]
        second = [RngTree(7).stream("x").random() for _ in range(3)]
        assert first == second

    def test_different_seeds_differ(self):
        a = RngTree(1).stream("x").random()
        b = RngTree(2).stream("x").random()
        assert a != b

    def test_stream_isolation_from_creation_order(self):
        """Creating extra streams must not perturb existing ones."""
        tree1 = RngTree(3)
        value1 = tree1.stream("target").random()

        tree2 = RngTree(3)
        tree2.stream("other1").random()
        tree2.stream("other2").random()
        value2 = tree2.stream("target").random()
        assert value1 == value2


class TestChildTrees:
    def test_child_is_namespaced(self):
        tree = RngTree(5)
        child_a = tree.child("a")
        child_b = tree.child("b")
        assert child_a.seed != child_b.seed
        assert child_a.stream("s").random() != child_b.stream("s").random()

    def test_child_reproducible(self):
        assert RngTree(5).child("p").seed == RngTree(5).child("p").seed

    def test_repr_contains_seed(self):
        assert "seed=9" in repr(RngTree(9))
