"""Unit tests for the AP deterministic client."""

import pytest

from repro.ara import ActivationReturnType, DeterministicClient
from repro.sim import Compute, World
from repro.sim.platform import CALM, PlatformConfig
from repro.time import MS


def run_client(seed=0, cycles=5, cycle_ns=10 * MS, client_seed=0, jitter=False):
    world = World(seed)
    config = (
        PlatformConfig(num_cores=2, dispatch_jitter_ns=50_000, timer_jitter_ns=200_000)
        if jitter
        else CALM
    )
    platform = world.add_platform("p", config)
    client = DeterministicClient(
        platform, cycle_ns=cycle_ns, seed=client_seed, max_cycles=cycles
    )
    trace = []

    def body():
        while True:
            activation = yield from client.wait_for_activation()
            trace.append(
                (activation, client.get_activation_time(), client.get_random())
            )
            if activation is ActivationReturnType.TERMINATE:
                return
            yield Compute(1 * MS)

    platform.spawn("swc", body())
    world.run_to_completion()
    return trace


class TestActivationSequence:
    def test_startup_phases_then_run(self):
        trace = run_client(cycles=3)
        kinds = [activation for activation, _, _ in trace]
        assert kinds[:3] == [
            ActivationReturnType.REGISTER_SERVICES,
            ActivationReturnType.SERVICE_DISCOVERY,
            ActivationReturnType.INIT,
        ]
        assert kinds[3:6] == [ActivationReturnType.RUN] * 3
        assert kinds[-1] is ActivationReturnType.TERMINATE

    def test_activation_times_on_strict_grid(self):
        trace = run_client(cycles=3, cycle_ns=10 * MS)
        times = [time for _, time, _ in trace]
        assert times == [i * 10 * MS for i in range(len(times))]

    def test_logical_times_identical_under_timing_jitter(self):
        """Redundant instances see identical logical activation times even
        though physical wakeups jitter — the core det-client property."""
        calm = run_client(seed=1, jitter=False)
        noisy = run_client(seed=2, jitter=True)
        assert [(a, t) for a, t, _ in calm] == [(a, t) for a, t, _ in noisy]


class TestDeterministicRandom:
    def test_same_seed_same_sequence(self):
        first = [r for _, _, r in run_client(seed=1, client_seed=9)]
        second = [r for _, _, r in run_client(seed=2, client_seed=9)]
        assert first == second

    def test_different_seed_differs(self):
        first = [r for _, _, r in run_client(client_seed=1)]
        second = [r for _, _, r in run_client(client_seed=2)]
        assert first != second


class TestWorkerPool:
    def test_result_order_is_container_order(self):
        world = World(0)
        platform = world.add_platform("p", CALM)
        client = DeterministicClient(platform, cycle_ns=10 * MS)
        result = client.run_worker_pool(lambda x: x * x, [3, 1, 2])
        assert result == [9, 1, 4]


class TestValidation:
    def test_cycle_must_be_positive(self):
        world = World(0)
        platform = world.add_platform("p", CALM)
        with pytest.raises(ValueError):
            DeterministicClient(platform, cycle_ns=0)

    def test_activation_time_before_first_activation(self):
        world = World(0)
        platform = world.add_platform("p", CALM)
        client = DeterministicClient(platform, cycle_ns=10 * MS)
        with pytest.raises(RuntimeError):
            client.get_activation_time()
