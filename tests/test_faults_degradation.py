"""Graceful degradation under injected faults.

The acceptance criterion for the fault subsystem: an *out-of-bound*
fault (a partition longer than the assumed latency bound ``L``) must
surface as an explicit, counted STP violation — never as silent
nondeterminism — and the :class:`LatePolicy` degradation modes must do
what they promise with the late payloads.

The STP-violation tests use a two-ECU pulse chain with a *ticking*
subscriber (its 1 ms local timer keeps logical time advancing, so a
deferred frame's release tag really is in the past on arrival); the
brake pipeline is purely event-driven, where the same fault manifests
as counted send-deadline misses instead.
"""

import pytest

from repro.apps.brake import BrakeScenario
from repro.apps.brake.det import run_det_brake_assistant
from repro.apps.brake.nondet import run_nondet_brake_assistant
from repro.ara import AraProcess
from repro.dear import (
    ClientEventTransactor,
    DeadlineFault,
    LatePolicy,
    ServerEventTransactor,
    StpConfig,
    TransactorConfig,
)
from repro.faults import (
    ClockFault,
    FaultPlan,
    NodeOutage,
    Partition,
    install_fault_plan,
)
from repro.harness.extensions import _Publisher, _pulse_interface, _Subscriber
from repro.network import ConstantLatency, NetworkInterface, Switch, SwitchConfig
from repro.reactors import Environment
from repro.sim import World
from repro.sim.platform import CALM
from repro.someip import SdDaemon
from repro.time import MS, SEC

#: Pulses leave at 400, 420, ... ms; the partition swallows the last four.
PULSES = 6
PARTITION = Partition(start_ns=430 * MS, end_ns=520 * MS)
LATENCY_BOUND_NS = 2 * MS


def _pulse_chain(
    plan: FaultPlan | None = None,
    late_policy: LatePolicy = LatePolicy.PROCESS,
    seed: int = 0,
):
    """Publisher on one ECU, ticking subscriber on the other.

    Returns ``(received, rx_transactor, injector)`` after the run.
    """
    interface = _pulse_interface(0x5600, "FaultPulse")
    world = World(seed)
    switch = Switch(
        world.sim, world.rng.stream("net"),
        SwitchConfig(latency=ConstantLatency(1 * MS), ns_per_byte=0),
    )
    world.attach_network(switch)
    for host in ("pub-ecu", "sub-ecu"):
        platform = world.add_platform(host, CALM)
        SdDaemon(platform, NetworkInterface(platform, switch))
    injector = install_fault_plan(world, plan) if plan is not None else None
    config = TransactorConfig(
        deadline_ns=5 * MS,
        stp=StpConfig(latency_bound_ns=LATENCY_BOUND_NS),
        late_policy=late_policy,
    )

    server_process = AraProcess(world.platform("pub-ecu"), "pub", tag_aware=True)
    server_env = Environment(name="pub", timeout=2 * SEC)
    publisher = _Publisher("publisher", server_env, PULSES)
    skeleton = server_process.create_skeleton(interface, 1)
    skeleton.implement("noop", lambda: None)
    tx = ServerEventTransactor(
        "tx", server_env, server_process, skeleton, "pulse", config
    )
    server_env.connect(publisher.out, tx.inp)
    skeleton.offer()
    server_env.start(world.platform("pub-ecu"))

    client_process = AraProcess(world.platform("sub-ecu"), "sub", tag_aware=True)
    client_env = Environment(name="sub", timeout=3 * SEC)
    subscriber = _Subscriber("subscriber", client_env)
    holder = {}

    def setup():
        proxy = yield from client_process.find_service(interface, 1)
        rx = ClientEventTransactor(
            "rx", client_env, client_process, proxy, "pulse", config
        )
        client_env.connect(rx.out, subscriber.inp)
        client_env.start(world.platform("sub-ecu"))
        holder["rx"] = rx

    client_process.spawn("setup", setup())
    world.run_for(3 * SEC)
    return subscriber.received, holder["rx"], injector


class TestOutOfBoundPartition:
    def test_clean_run_has_no_violations(self):
        received, rx, _ = _pulse_chain()
        assert [value for _, value in received] == list(range(1, PULSES + 1))
        assert rx.stp_violations == 0

    def test_partition_longer_than_bound_is_an_explicit_stp_violation(self):
        # A defer partition holds frames for ~90 ms >> L = 2 ms; their
        # release tags are long past on arrival.  Under the paper's
        # PROCESS policy every pulse still comes through, but each
        # out-of-bound one is a counted violation — flagged, not silent.
        plan = FaultPlan(seed=1, partitions=(PARTITION,))
        received, rx, injector = _pulse_chain(plan)
        assert rx.stp_violations >= 3
        assert [value for _, value in received] == list(range(1, PULSES + 1))
        assert injector.counters["partition-defer"] >= 3

    def test_drop_policy_discards_late_messages(self):
        plan = FaultPlan(seed=1, partitions=(PARTITION,))
        received, rx, _ = _pulse_chain(plan, late_policy=LatePolicy.DROP)
        values = [value for _, value in received]
        assert rx.late_handled >= 3
        assert rx.stp_violations == rx.late_handled
        # Downstream sees a gap: the in-bound prefix only.
        assert values == list(range(1, PULSES + 1 - rx.late_handled))

    def test_last_known_policy_substitutes_the_previous_value(self):
        plan = FaultPlan(seed=1, partitions=(PARTITION,))
        received, rx, _ = _pulse_chain(plan, late_policy=LatePolicy.LAST_KNOWN)
        values = [value for _, value in received]
        assert rx.late_handled >= 3
        last_in_bound = PULSES - rx.late_handled
        assert values[:last_in_bound] == list(range(1, last_in_bound + 1))
        assert values[last_in_bound:] == [last_in_bound] * rx.late_handled

    def test_fault_signal_policy_delivers_fault_objects(self):
        plan = FaultPlan(seed=1, partitions=(PARTITION,))
        received, rx, _ = _pulse_chain(plan, late_policy=LatePolicy.FAULT_SIGNAL)
        faults = [value for _, value in received if isinstance(value, DeadlineFault)]
        clean = [value for _, value in received if not isinstance(value, DeadlineFault)]
        assert len(faults) == rx.late_handled >= 3
        # The application sees *which* values were late, with their tags.
        assert [fault.value for fault in faults] == list(
            range(len(clean) + 1, PULSES + 1)
        )
        assert all(fault.tag is not None for fault in faults)


class TestBrakePipelineDegradation:
    SCENARIO = BrakeScenario(n_frames=40, deterministic_camera=True)

    def test_inbound_drops_keep_dear_deterministic_while_stock_diverges(self):
        # The central claim: the same fault schedule hits every run, and
        # the DEAR pipeline's *reaction* to it is seed-independent while
        # the stock pipeline's is not.
        plan = FaultPlan.camera_faults(seed=3, drop=0.1, label="divergence")
        det = [
            run_det_brake_assistant(seed, self.SCENARIO, fault_plan=plan)
            for seed in (0, 1, 2)
        ]
        assert len({repr(sorted(r.commands.items())) for r in det}) == 1
        assert det[0].fault_summary["fired"] > 0

        nondet = [
            run_nondet_brake_assistant(
                seed, BrakeScenario(n_frames=40), fault_plan=plan
            )
            for seed in (0, 1, 2)
        ]
        assert len({repr(sorted(r.commands.items())) for r in nondet}) > 1

    def test_out_of_bound_partition_is_flagged_in_the_brake_pipeline(self):
        # The event-driven brake pipeline has no ticking receiver, so a
        # partition > L surfaces as counted send-deadline misses rather
        # than arrival-side STP violations — still explicit, never silent.
        partition = Partition(start_ns=700 * MS, end_ns=900 * MS)
        plan = FaultPlan(seed=1, partitions=(partition,))
        result = run_det_brake_assistant(0, self.SCENARIO, fault_plan=plan)
        assert result.fault_summary["counters"]["partition-defer"] > 0
        assert result.deadline_misses + result.stp_violations > 0

    def test_node_outage_freezes_and_recovers(self):
        plan = FaultPlan(
            seed=1,
            outages=(
                NodeOutage(host="vision-ecu", start_ns=200 * MS, end_ns=260 * MS),
            ),
        )
        result = run_det_brake_assistant(0, self.SCENARIO, fault_plan=plan)
        counters = result.fault_summary["counters"]
        assert counters["crash"] == 1
        assert counters["restart"] == 1
        # The pipeline resumes after the thaw and keeps producing.
        assert len(result.commands) > 0

    def test_clock_fault_is_applied_and_recorded(self):
        plan = FaultPlan(
            seed=1,
            clock_faults=(
                ClockFault(host="fusion-ecu", at_ns=150 * MS, step_ns=3 * MS),
            ),
        )
        result = run_det_brake_assistant(0, self.SCENARIO, fault_plan=plan)
        assert result.fault_summary["counters"]["clock-fault"] == 1

    def test_outage_on_unknown_host_fails_fast(self):
        plan = FaultPlan(outages=(NodeOutage(host="ghost", start_ns=0, end_ns=1),))
        with pytest.raises(Exception):
            run_det_brake_assistant(0, self.SCENARIO, fault_plan=plan)
