"""Determinism of the fault injector: PRF decisions, replay, no perturbation."""

import pytest

from repro.apps.brake import BrakeScenario
from repro.apps.brake.det import run_det_brake_assistant
from repro.apps.brake.nondet import run_nondet_brake_assistant
from repro.errors import SimulationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFault,
    NodeOutage,
    install_fault_plan,
)
from repro.network.switch import Frame
from repro.sim import World

DET_SCENARIO = BrakeScenario(n_frames=40, deterministic_camera=True)
DROP_PLAN = FaultPlan.camera_faults(seed=7, drop=0.15, label="drops")


def _camera_frame(index: int = 0) -> Frame:
    return Frame(
        src_host="camera-ecu",
        src_port=40000,
        dst_host="fusion-ecu",
        dst_port=15000,
        payload=index,
        size_bytes=4096,
    )


class TestInjectorUnit:
    def test_decisions_are_pure_functions_of_plan_seed(self):
        a = FaultInjector(DROP_PLAN)
        b = FaultInjector(DROP_PLAN)
        verdicts_a = [a.on_send(_camera_frame(i), i * 1000) for i in range(200)]
        verdicts_b = [b.on_send(_camera_frame(i), i * 1000) for i in range(200)]
        assert verdicts_a == verdicts_b
        assert a.trace.fingerprint() == b.trace.fingerprint()
        assert a.fired > 0

    def test_different_fault_seed_changes_decisions(self):
        a = FaultInjector(DROP_PLAN)
        b = FaultInjector(DROP_PLAN.with_seed(8))
        for i in range(200):
            a.on_send(_camera_frame(i), i * 1000)
            b.on_send(_camera_frame(i), i * 1000)
        assert a.trace.fingerprint() != b.trace.fingerprint()

    def test_unmatched_flow_is_untouched(self):
        injector = FaultInjector(DROP_PLAN)
        frame = Frame(
            src_host="a", src_port=1, dst_host="b", dst_port=30490,
            payload=None, size_bytes=64,
        )
        assert all(injector.on_send(frame, t) is None for t in range(100))
        assert injector.fired == 0

    def test_replay_table_reproduces_and_subsets(self):
        live = FaultInjector(DROP_PLAN)
        for i in range(200):
            live.on_send(_camera_frame(i), i * 1000)
        assert live.fired >= 4, "plan too weak for the test to mean anything"

        replayed = FaultInjector(DROP_PLAN, replay=live.trace)
        for i in range(200):
            replayed.on_send(_camera_frame(i), i * 1000)
        assert replayed.trace.fingerprint() == live.trace.fingerprint()

        from dataclasses import replace

        subset = replace(live.trace, records=live.trace.records[::2])
        partial = FaultInjector(DROP_PLAN, replay=subset)
        for i in range(200):
            partial.on_send(_camera_frame(i), i * 1000)
        assert partial.fired == len(subset.records)

    def test_verdict_kinds(self):
        plan = FaultPlan(
            seed=1,
            link_faults=(
                LinkFault(
                    dst_port=15000,
                    corrupt_probability=1.0,
                    spike_probability=1.0,
                    spike_ns=500,
                    duplicate_probability=1.0,
                    duplicate_delay_ns=50,
                ),
            ),
        )
        injector = FaultInjector(plan)
        verdict = injector.on_send(_camera_frame(), 0)
        assert verdict.corrupt
        assert verdict.extra_delay_ns == 500
        assert verdict.duplicate_delay_ns == 50
        assert verdict.drop is None
        assert injector.counters == {"corrupt": 1, "spike": 1, "duplicate": 1}


class TestInstallValidation:
    def test_outage_needs_known_host(self):
        world = World(0)
        plan = FaultPlan(outages=(NodeOutage(host="ghost", start_ns=0, end_ns=1),))
        with pytest.raises(SimulationError):
            install_fault_plan(world, plan)

    def test_link_faults_need_a_network(self):
        world = World(0)
        with pytest.raises(SimulationError):
            install_fault_plan(world, DROP_PLAN)


class TestBrakeRunsUnderFaults:
    def test_same_seed_and_plan_replays_bit_exactly(self):
        first = run_det_brake_assistant(0, DET_SCENARIO, fault_plan=DROP_PLAN)
        second = run_det_brake_assistant(0, DET_SCENARIO, fault_plan=DROP_PLAN)
        assert first.fault_summary == second.fault_summary
        assert first.fault_summary["fired"] > 0
        assert first.trace_fingerprints == second.trace_fingerprints
        assert first.commands == second.commands

    def test_no_faults_means_no_summary(self):
        result = run_det_brake_assistant(0, DET_SCENARIO)
        assert result.fault_summary is None

    def test_never_firing_plan_does_not_perturb_the_run(self):
        # A plan that matches every camera frame but never fires must
        # leave the run byte-identical: the injector consumes nothing
        # from the world's RNG tree.
        inert = FaultPlan(
            seed=5, link_faults=(LinkFault(dst_port=15000, drop_probability=0.0),)
        )
        baseline = run_det_brake_assistant(0, DET_SCENARIO)
        nulled = run_det_brake_assistant(0, DET_SCENARIO, fault_plan=inert)
        assert nulled.fault_summary["fired"] == 0
        assert nulled.trace_fingerprints == baseline.trace_fingerprints
        assert nulled.commands == baseline.commands
        assert nulled.latencies_ns == baseline.latencies_ns

    def test_fault_schedule_is_stable_across_world_seeds(self):
        # PRF decisions key on the plan seed and per-flow frame index,
        # never on the world seed: every world sees the same schedule.
        summaries = [
            run_nondet_brake_assistant(
                seed, BrakeScenario(n_frames=40), fault_plan=DROP_PLAN
            ).fault_summary
            for seed in (0, 1, 2)
        ]
        fingerprints = {s["trace_fingerprint"] for s in summaries}
        assert len(fingerprints) == 1
        assert summaries[0]["fired"] > 0

    def test_fault_replay_reproduces_a_run(self):
        from dataclasses import replace

        from repro.explore import DecisionTrace

        first = run_det_brake_assistant(0, DET_SCENARIO, fault_plan=DROP_PLAN)
        recorded = DecisionTrace.from_dict(first.fault_summary["trace"])
        assert recorded.records

        replayed = run_det_brake_assistant(
            0, DET_SCENARIO, fault_plan=DROP_PLAN, fault_replay=recorded
        )
        assert replayed.fault_summary["trace_fingerprint"] == (
            first.fault_summary["trace_fingerprint"]
        )
        assert replayed.trace_fingerprints == first.trace_fingerprints
        assert replayed.commands == first.commands

        # Any subset of the recorded schedule is itself a valid schedule.
        subset = replace(recorded, records=recorded.records[:2])
        partial = run_det_brake_assistant(
            0, DET_SCENARIO, fault_plan=DROP_PLAN, fault_replay=subset
        )
        assert partial.fault_summary["fired"] == 2

    def test_corrupt_frames_are_counted_losses(self):
        plan = FaultPlan(
            seed=2,
            link_faults=(LinkFault(dst_port=15000, corrupt_probability=0.2),),
        )
        result = run_det_brake_assistant(0, DET_SCENARIO, fault_plan=plan)
        corrupted = result.fault_summary["counters"].get("corrupt", 0)
        assert corrupted > 0
        # A corrupted frame is lost at the NIC, never delivered as data:
        # the pipeline simply answers fewer frames.
        assert len(result.commands) <= DET_SCENARIO.n_frames - corrupted + 1
