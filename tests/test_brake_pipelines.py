"""Integration tests for the two brake-assistant variants.

These use small frame counts to stay fast; the benchmark suite runs the
paper-scale experiments.
"""

import pytest

from repro.apps.brake import (
    BrakeScenario,
    run_det_brake_assistant,
    run_nondet_brake_assistant,
)
from repro.apps.brake.logic import oracle_commands
from repro.apps.brake.vision import SceneGenerator

SMALL = BrakeScenario(n_frames=120)


@pytest.fixture(scope="module")
def oracle():
    generator = SceneGenerator(SMALL.period_ns, SMALL.variant)
    return oracle_commands(generator, SMALL.n_frames)


class TestNondetPipeline:
    def test_pipeline_produces_commands(self):
        result = run_nondet_brake_assistant(0, SMALL)
        assert len(result.commands) > SMALL.n_frames // 2

    def test_same_seed_reproducible(self):
        first = run_nondet_brake_assistant(5, SMALL)
        second = run_nondet_brake_assistant(5, SMALL)
        assert first.errors.as_dict() == second.errors.as_dict()
        assert first.commands == second.commands

    def test_error_rate_varies_across_seeds(self):
        scenario = BrakeScenario(n_frames=400)
        rates = {
            run_nondet_brake_assistant(seed, scenario).errors.total()
            for seed in range(8)
        }
        assert len(rates) > 1

    def test_commands_follow_logic_when_aligned(self, oracle):
        """Even the stock pipeline computes correct commands for the
        frames it does not lose or misalign."""
        result = run_nondet_brake_assistant(0, SMALL)
        agreeing = sum(
            1
            for seq, command in result.commands.items()
            if oracle[seq] == command
        )
        assert agreeing >= len(result.commands) * 0.9

    def test_latencies_recorded(self):
        result = run_nondet_brake_assistant(0, SMALL)
        assert result.latencies_ns
        for latency in result.latencies_ns.values():
            assert 0 < latency < 500_000_000


class TestDetPipeline:
    def test_zero_errors(self):
        result = run_det_brake_assistant(0, SMALL)
        assert result.errors.total() == 0
        assert result.deadline_misses == 0
        assert result.stp_violations == 0

    def test_every_frame_processed(self):
        result = run_det_brake_assistant(0, SMALL)
        assert sorted(result.commands) == list(range(SMALL.n_frames))

    def test_matches_oracle_exactly(self, oracle):
        result = run_det_brake_assistant(0, SMALL)
        assert result.compare_with_oracle(oracle).is_perfect

    def test_commands_identical_across_seeds(self):
        runs = [run_det_brake_assistant(seed, SMALL) for seed in range(3)]
        commands = {tuple(sorted(run.commands.items())) for run in runs}
        assert len(commands) == 1

    def test_traces_identical_with_deterministic_camera(self):
        scenario = BrakeScenario(n_frames=60, deterministic_camera=True)
        fingerprints = {
            tuple(
                sorted(
                    run_det_brake_assistant(seed, scenario).trace_fingerprints.items()
                )
            )
            for seed in range(3)
        }
        assert len(fingerprints) == 1

    def test_latency_is_bounded_by_deadline_chain(self):
        """End-to-end physical latency stays within the budget the
        deadline/STP chain implies."""
        scenario = SMALL
        result = run_det_brake_assistant(0, scenario)
        release = scenario.latency_bound_ns + scenario.clock_error_ns
        logical_budget = (
            scenario.adapter_deadline_ns
            + scenario.preprocessing_deadline_ns
            + scenario.computer_vision_deadline_ns
            + 3 * release
        )
        # Physical completion adds the EBA execution, bounded by its
        # deadline budget; allow small scheduling slack on top.
        bound = logical_budget + scenario.eba_deadline_ns + 5_000_000
        for latency in result.latencies_ns.values():
            assert latency <= bound

    def test_nondet_loses_brake_events_det_does_not(self, oracle):
        """The safety punchline on an unlucky seed."""
        scenario = BrakeScenario(n_frames=400)
        generator = SceneGenerator(scenario.period_ns, scenario.variant)
        full_oracle = oracle_commands(generator, scenario.n_frames)
        losses = []
        for seed in range(8):
            nondet = run_nondet_brake_assistant(seed, scenario)
            comparison = nondet.compare_with_oracle(full_oracle)
            losses.append(comparison.missed_brakes + comparison.phantom_brakes)
        assert any(loss > 0 for loss in losses)
        det = run_det_brake_assistant(0, scenario)
        assert det.compare_with_oracle(full_oracle).is_perfect


class TestImagePipeline:
    def test_image_based_det_run(self):
        scenario = BrakeScenario(n_frames=30, use_image_pipeline=True)
        result = run_det_brake_assistant(0, scenario)
        assert result.errors.total() == 0
        assert len(result.commands) == 30
