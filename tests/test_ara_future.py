"""Unit tests for ara futures and promises."""

import pytest

from repro.ara import FutureState, Promise
from repro.errors import FutureError
from repro.sim import Compute, Sleep, World
from repro.sim.platform import CALM
from repro.time import MS


def make_platform(seed=0):
    world = World(seed)
    return world, world.add_platform("p", CALM)


class TestStates:
    def test_initially_pending(self):
        _, platform = make_platform()
        promise = Promise(platform)
        assert promise.future.state is FutureState.PENDING
        assert not promise.future.is_ready()

    def test_resolve(self):
        _, platform = make_platform()
        promise = Promise(platform)
        promise.set_value(42)
        assert promise.future.state is FutureState.RESOLVED
        assert promise.future.result() == 42

    def test_reject(self):
        _, platform = make_platform()
        promise = Promise(platform)
        promise.set_error(RuntimeError("boom"))
        assert promise.future.state is FutureState.REJECTED
        with pytest.raises(RuntimeError):
            promise.future.result()

    def test_double_completion_rejected(self):
        _, platform = make_platform()
        promise = Promise(platform)
        promise.set_value(1)
        with pytest.raises(FutureError):
            promise.set_value(2)

    def test_result_before_ready_raises(self):
        _, platform = make_platform()
        with pytest.raises(FutureError):
            Promise(platform).future.result()


class TestBlockingGet:
    def test_get_blocks_until_fulfilled(self):
        world, platform = make_platform()
        promise = Promise(platform)
        log = []

        def consumer():
            value = yield from promise.future.get()
            log.append((value, world.now))

        def producer():
            yield Sleep(5 * MS)
            promise.set_value("done")

        platform.spawn("consumer", consumer())
        platform.spawn("producer", producer())
        world.run_to_completion()
        assert log == [("done", 5 * MS)]

    def test_get_after_ready_is_immediate(self):
        world, platform = make_platform()
        promise = Promise(platform)
        promise.set_value(7)
        log = []

        def consumer():
            yield Compute(1)
            value = yield from promise.future.get()
            log.append(value)

        platform.spawn("consumer", consumer())
        world.run_to_completion()
        assert log == [7]

    def test_get_propagates_error(self):
        world, platform = make_platform()
        promise = Promise(platform)
        log = []

        def consumer():
            try:
                yield from promise.future.get()
            except ValueError as exc:
                log.append(str(exc))

        platform.spawn("consumer", consumer())
        world.sim.at(1 * MS, lambda: promise.set_error(ValueError("nope")))
        world.run_to_completion()
        assert log == ["nope"]

    def test_kernel_context_fulfillment_wakes_thread(self):
        world, platform = make_platform()
        promise = Promise(platform)
        log = []

        def consumer():
            value = yield from promise.future.get()
            log.append(value)

        platform.spawn("consumer", consumer())
        world.sim.at(3 * MS, lambda: promise.set_value("from-kernel"))
        world.run_to_completion()
        assert log == ["from-kernel"]


class TestWaitUntil:
    def test_timeout_returns_false(self):
        world, platform = make_platform()
        promise = Promise(platform)
        log = []

        def consumer():
            ready = yield from promise.future.wait_until(platform.local_now() + 2 * MS)
            log.append((ready, world.now))

        platform.spawn("consumer", consumer())
        world.run_for(10 * MS)
        assert log == [(False, 2 * MS)]

    def test_ready_in_time_returns_true(self):
        world, platform = make_platform()
        promise = Promise(platform)
        log = []

        def consumer():
            ready = yield from promise.future.wait_until(platform.local_now() + 20 * MS)
            log.append(ready)

        platform.spawn("consumer", consumer())
        world.sim.at(1 * MS, lambda: promise.set_value(1))
        world.run_for(30 * MS)
        assert log == [True]


class TestThen:
    def test_then_called_on_completion(self):
        world, platform = make_platform()
        promise = Promise(platform)
        seen = []
        promise.future.then(lambda future: seen.append(future.result()))
        promise.set_value(9)
        assert seen == [9]

    def test_then_after_completion_fires_immediately(self):
        _, platform = make_platform()
        promise = Promise(platform)
        promise.set_value(3)
        seen = []
        promise.future.then(lambda future: seen.append(future.result()))
        assert seen == [3]

    def test_multiple_callbacks(self):
        _, platform = make_platform()
        promise = Promise(platform)
        seen = []
        promise.future.then(lambda f: seen.append("a"))
        promise.future.then(lambda f: seen.append("b"))
        promise.set_value(None)
        assert seen == ["a", "b"]
