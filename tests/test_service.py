"""Tests for the distributed sweep service (coordinator/worker/HTTP).

The acceptance invariant for the whole subsystem: a campaign executed
across workers — over real loopback HTTP, with chunked jobs, retries
and worker deaths — merges **byte-identical** (per-seed pickle bytes,
in seed order) to ``SweepRunner.run_spec`` on one host.
"""

import os
import pickle
import signal
import subprocess
import sys
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.brake.scenario import BrakeScenario
from repro.faults import FaultPlan
from repro.harness import ScenarioSpec, SweepRunner
from repro.harness.sweep import _encode_value
from repro.service import (
    Coordinator,
    CoordinatorConfig,
    HttpClient,
    LocalClient,
    LocalService,
    ResultStore,
    ServiceError,
    Worker,
    merged_values,
    seed_outcomes,
    serve,
)
from repro.harness.sweep import SweepError


def make_spec(seeds=(0, 1, 2, 3, 4), variant="det", frames=40, faults=None):
    return ScenarioSpec(
        variant=variant,
        seeds=tuple(seeds),
        scenario=BrakeScenario(n_frames=frames),
        faults=faults,
        label="svc-test",
    )


def local_reference(spec):
    """The one-host ground truth the service must reproduce exactly."""
    return SweepRunner(workers=1, use_cache=False).run_spec(spec).values()


def assert_byte_identical(service_values, reference_values):
    assert len(service_values) == len(reference_values)
    for served, local in zip(service_values, reference_values):
        assert served == local
        assert pickle.dumps(served) == pickle.dumps(local)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def wire_outcomes(seeds, prefix="value"):
    outcomes = []
    for seed in seeds:
        encoding, payload = _encode_value(f"{prefix}-{seed}")
        outcomes.append(
            {
                "seed": seed,
                "encoding": encoding,
                "payload": payload,
                "error": None,
                "cached": False,
                "elapsed_s": 0.0,
            }
        )
    return outcomes


@pytest.fixture
def clocked(tmp_path):
    clock = FakeClock()
    config = CoordinatorConfig(
        chunk_size=2,
        max_attempts=3,
        lease_ttl_s=5.0,
        job_timeout_s=60.0,
        retry_backoff_s=1.0,
    )
    return Coordinator(ResultStore(tmp_path), config, clock=clock), clock


class TestCoordinatorQueue:
    def test_sharding_chunks_in_seed_order(self, clocked):
        coordinator, _ = clocked
        status = coordinator.submit(make_spec(seeds=(5, 1, 3, 2, 8)))
        assert status["jobs"] == 3  # ceil(5 / chunk_size=2)
        worker = coordinator.register()
        chunks = []
        while (job := coordinator.lease(worker)) is not None:
            chunks.append(job["seeds"])
            coordinator.complete(worker, job["job"], wire_outcomes(job["seeds"]))
        assert chunks == [[5, 1], [3, 2], [8]]  # spec order, not sorted
        result = coordinator.result(status["campaign"])
        assert [o["seed"] for o in result["outcomes"]] == [5, 1, 3, 2, 8]

    def test_lease_is_exclusive_until_expiry(self, clocked):
        coordinator, _ = clocked
        coordinator.submit(make_spec(seeds=(0, 1)))
        w1, w2 = coordinator.register(), coordinator.register()
        job = coordinator.lease(w1)
        assert job is not None
        assert coordinator.lease(w2) is None  # single job, already leased

    def test_worker_death_requeues_with_backoff(self, clocked):
        coordinator, clock = clocked
        status = coordinator.submit(make_spec(seeds=(0, 1)))
        w1, w2 = coordinator.register(), coordinator.register()
        job = coordinator.lease(w1)
        clock.advance(5.1)  # TTL passes with no heartbeat: worker died
        assert coordinator.lease(w2) is None  # backoff: not yet runnable
        clock.advance(1.1)  # retry_backoff_s elapsed
        retried = coordinator.lease(w2)
        assert retried is not None
        assert retried["job"] == job["job"]
        assert retried["attempt"] == 2
        report = coordinator.report(status["campaign"])
        assert report["requeues"] == 1

    def test_heartbeat_extends_the_lease(self, clocked):
        coordinator, clock = clocked
        coordinator.submit(make_spec(seeds=(0, 1)))
        w1, w2 = coordinator.register(), coordinator.register()
        job = coordinator.lease(w1)
        for _ in range(4):
            clock.advance(4.0)
            assert coordinator.heartbeat(w1, job["job"])["ok"]
            assert coordinator.lease(w2) is None  # still held
        reply = coordinator.complete(w1, job["job"], wire_outcomes([0, 1]))
        assert reply["ok"]

    def test_heartbeat_cannot_outlive_the_job_timeout(self, clocked):
        coordinator, clock = clocked
        coordinator.submit(make_spec(seeds=(0, 1)))
        w1 = coordinator.register()
        job = coordinator.lease(w1)
        for _ in range(14):  # heartbeat diligently past job_timeout_s=60
            clock.advance(4.5)
            coordinator.heartbeat(w1, job["job"])
        clock.advance(4.5)
        assert not coordinator.heartbeat(w1, job["job"])["ok"]  # reaped

    def test_stale_complete_is_rejected_after_requeue(self, clocked):
        coordinator, clock = clocked
        status = coordinator.submit(make_spec(seeds=(0, 1)))
        w1, w2 = coordinator.register(), coordinator.register()
        job = coordinator.lease(w1)
        clock.advance(6.2)  # lease expires
        assert coordinator.lease(w2) is None  # reaped, but backoff pending
        clock.advance(1.1)
        retried = coordinator.lease(w2)
        assert retried is not None
        # the presumed-dead worker wakes up and reports late: dropped.
        reply = coordinator.complete(w1, job["job"], wire_outcomes([0, 1]))
        assert not reply["ok"]
        reply = coordinator.complete(w2, job["job"], wire_outcomes([0, 1]))
        assert reply["ok"]
        result = coordinator.result(status["campaign"])
        assert {o["worker"] for o in result["outcomes"]} == {w2}

    def test_reported_failure_retries_then_fails_terminally(self, clocked):
        """After max_attempts the seeds get error outcomes — never silent."""
        coordinator, clock = clocked
        status = coordinator.submit(make_spec(seeds=(0, 1, 2)))
        worker = coordinator.register()
        failed_attempts = []
        for _ in range(30):
            if coordinator.status(status["campaign"])["status"] == "done":
                break
            job = coordinator.lease(worker)
            if job is None:
                clock.advance(1.0)  # ride out the retry backoff
            elif job["job"].endswith("-j0"):  # chunk (0, 1): always fails
                failed_attempts.append(job["attempt"])
                coordinator.fail(worker, job["job"], f"boom {job['attempt']}")
            else:  # chunk (2,): succeeds
                coordinator.complete(worker, job["job"], wire_outcomes(job["seeds"]))
        assert failed_attempts == [1, 2, 3]  # max_attempts=3, then terminal
        final = coordinator.status(status["campaign"])
        assert final["status"] == "done"
        assert final["failed"] == 2
        result = coordinator.result(status["campaign"])
        outcomes = seed_outcomes(result)
        assert [o.ok for o in outcomes] == [False, False, True]
        assert "boom 3" in outcomes[0].error
        assert "failed terminally" in outcomes[1].error
        with pytest.raises(SweepError, match="2 seed"):
            merged_values(result)

    def test_cached_submit_completes_without_jobs(self, clocked):
        coordinator, _ = clocked
        spec = make_spec(seeds=(0, 1))
        worker = coordinator.register()
        coordinator.submit(spec)
        while (job := coordinator.lease(worker)) is not None:
            coordinator.complete(worker, job["job"], wire_outcomes(job["seeds"]))
        # a renamed superset campaign: both stored seeds hit, one runs
        again = coordinator.submit(make_spec(seeds=(0, 1, 9)))
        assert again["cached"] == 2
        assert again["jobs"] == 1

    def test_unknown_campaign_raises_key_error(self, clocked):
        coordinator, _ = clocked
        with pytest.raises(KeyError):
            coordinator.status("c999-deadbeef")


class TestLocalClientWorker:
    def test_worker_drains_queue_via_local_client(self, tmp_path):
        config = CoordinatorConfig(chunk_size=3, lease_ttl_s=5.0)
        coordinator = Coordinator(ResultStore(tmp_path / "store"), config)
        client = LocalClient(coordinator)
        spec = make_spec(seeds=(0, 1, 2, 3), frames=30)
        status = client.submit(spec)
        completed = Worker(client, poll_interval_s=0.01).run(max_jobs=2)
        assert completed == 2
        result = client.wait(status["campaign"], timeout_s=5.0)
        assert_byte_identical(merged_values(result), local_reference(spec))


class TestHttpApi:
    def test_protocol_shapes_and_errors(self, tmp_path):
        coordinator = Coordinator(ResultStore(tmp_path))
        server = serve(coordinator)
        try:
            client = HttpClient(server.url)
            assert client.ping()
            client.connect(timeout_s=1.0)
            with pytest.raises(ServiceError) as excinfo:
                client.status("c1-nope")
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError) as excinfo:
                client._request("/v1/submit", {"spec": {"format": "junk"}})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client._request("/v1/lease", {})
            assert excinfo.value.status == 400
            with pytest.raises(ServiceError) as excinfo:
                client._request("/v1/nope", {})
            assert excinfo.value.status == 404
            worker_id = client.register({"host": "test"})
            assert client.lease(worker_id) is None
            workers = client.workers()
            assert [w["worker"] for w in workers] == [worker_id]
            assert workers[0]["info"] == {"host": "test"}
        finally:
            server.shutdown()
            server.server_close()

    def test_campaign_flow_over_http(self, tmp_path):
        spec = make_spec(seeds=(0, 1, 2), frames=30)
        with LocalService(tmp_path / "store", workers=2) as service:
            status = service.client.submit(spec)
            result = service.client.wait(status["campaign"], timeout_s=60.0)
            assert result["status"] == "done"
            report = service.client.report(status["campaign"])
            assert report["format"] == "sweep-service/v1"
            assert report["status"] == "done"
            assert report["store"]["records"] == 3
            campaigns = service.client.campaigns()
            assert len(campaigns) == 1
        assert_byte_identical(merged_values(result), local_reference(spec))


CASES = [
    pytest.param(make_spec(seeds=(0, 1, 2, 3, 4)), id="det"),
    pytest.param(make_spec(seeds=(3, 11, 7), variant="nondet"), id="nondet"),
    pytest.param(
        make_spec(
            seeds=(0, 1, 2, 5),
            faults=FaultPlan.camera_faults(
                seed=1, drop=0.05, duplicate=0.02, label="svc-faults"
            ),
        ),
        id="faulted",
    ),
]


class TestDistributedEqualsLocal:
    """The core invariant: distributed merge ≡ local run, byte for byte."""

    @pytest.mark.parametrize("spec", CASES)
    def test_campaign_matches_run_spec(self, tmp_path, spec):
        reference = local_reference(spec)
        config = CoordinatorConfig(chunk_size=2)
        with LocalService(tmp_path / "store", workers=3, config=config) as svc:
            values = svc.run_spec(spec, timeout_s=120.0)
            report = svc.client.report(svc.client.campaigns()[0]["campaign"])
        assert report["jobs"]  # really went through the queue
        assert len({j["worker"] for j in report["jobs"]}) >= 1
        assert_byte_identical(values, reference)

    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=30),
            min_size=1,
            max_size=5,
            unique=True,
        ),
        variant=st.sampled_from(["det", "nondet"]),
        chunk_size=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=6, deadline=None)
    def test_property_any_seed_list_any_chunking(
        self, tmp_path_factory, seeds, variant, chunk_size
    ):
        spec = make_spec(seeds=tuple(seeds), variant=variant, frames=20)
        reference = local_reference(spec)
        store_dir = tmp_path_factory.mktemp("svc-prop")
        config = CoordinatorConfig(chunk_size=chunk_size)
        with LocalService(store_dir, workers=2, config=config) as svc:
            values = svc.run_spec(spec, timeout_s=120.0)
        assert_byte_identical(values, reference)

    def test_resubmission_is_pure_cache_hit(self, tmp_path):
        spec = make_spec(seeds=(0, 1, 2, 3))
        reference = local_reference(spec)
        store_dir = tmp_path / "shared-store"
        with LocalService(store_dir, workers=2) as svc:
            first = svc.submit_and_wait(spec)
            assert first["cached"] == 0
        # a *fresh* coordinator (new host, same shared store): pure hit.
        with LocalService(store_dir, workers=0) as svc:
            again = svc.client.submit(spec)
            assert again["cached"] == 4
            assert again["jobs"] == 0
            result = svc.client.wait(again["campaign"], timeout_s=5.0)
        assert all(o["cached"] for o in result["outcomes"])
        assert_byte_identical(merged_values(result), reference)


_HANG_WORKER = """
import sys, time
from repro.service import HttpClient

client = HttpClient(sys.argv[1])
worker_id = client.register({"hang": True})
job = client.lease(worker_id)
print("leased" if job else "none", flush=True)
time.sleep(120)
"""


class TestWorkerDeath:
    def test_killed_worker_requeues_and_campaign_still_matches_local(self, tmp_path):
        """Kill -9 a worker mid-job: the lease expires, the job requeues
        with backoff, surviving workers finish, and the merged campaign
        is still byte-identical to the local run."""
        spec = make_spec(seeds=(0, 1, 2, 3, 4, 5), frames=30)
        reference = local_reference(spec)
        config = CoordinatorConfig(
            chunk_size=2,
            lease_ttl_s=0.4,
            retry_backoff_s=0.05,
            max_attempts=4,
        )
        store = ResultStore(tmp_path / "store")
        coordinator = Coordinator(store, config)
        server = serve(coordinator)
        try:
            client = HttpClient(server.url)
            status = client.submit(spec)
            env = dict(os.environ)
            src = os.path.join(os.path.dirname(__file__), "..", "src")
            env["PYTHONPATH"] = os.path.abspath(src)
            victim = subprocess.Popen(
                [sys.executable, "-c", _HANG_WORKER, server.url],
                stdout=subprocess.PIPE,
                text=True,
                env=env,
            )
            try:
                assert victim.stdout.readline().strip() == "leased"
                victim.send_signal(signal.SIGKILL)  # worker dies mid-job
                victim.wait(timeout=10)
            finally:
                if victim.poll() is None:
                    victim.kill()
            stop = threading.Event()
            workers = [Worker(HttpClient(server.url)) for _ in range(2)]
            threads = [
                threading.Thread(target=w.run, kwargs={"stop": stop}, daemon=True)
                for w in workers
            ]
            for thread in threads:
                thread.start()
            try:
                result = client.wait(status["campaign"], timeout_s=120.0)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10.0)
            report = client.report(status["campaign"])
        finally:
            server.shutdown()
            server.server_close()
        assert report["requeues"] >= 1  # the killed worker's lease expired
        assert report["failed"] == 0  # retry rescued it, not an error entry
        assert_byte_identical(merged_values(result), reference)

    def test_backoff_delays_the_retry(self, tmp_path):
        """After a worker death the job is not immediately re-leasable."""
        clock = FakeClock()
        config = CoordinatorConfig(chunk_size=2, lease_ttl_s=0.5, retry_backoff_s=3.0)
        coordinator = Coordinator(ResultStore(tmp_path), config, clock=clock)
        coordinator.submit(make_spec(seeds=(0, 1)))
        w1, w2 = coordinator.register(), coordinator.register()
        assert coordinator.lease(w1) is not None
        clock.advance(0.6)  # death detected
        assert coordinator.lease(w2) is None
        clock.advance(1.0)  # backoff (3s) not yet over
        assert coordinator.lease(w2) is None
        clock.advance(2.5)
        assert coordinator.lease(w2) is not None
