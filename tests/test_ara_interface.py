"""Unit tests for service interface descriptions."""

import pytest

from repro.ara import Event, Field, Method, ServiceInterface
from repro.someip.serialization import INT32, STRING, UINT16


def calc_interface(**overrides):
    spec = dict(
        name="Calculator",
        service_id=0x1234,
        methods=[
            Method("set_value", 0x0001, arguments=[("value", INT32)]),
            Method("add", 0x0002, arguments=[("amount", INT32)]),
            Method("get_value", 0x0003, returns=[("value", INT32)]),
            Method("reset", 0x0004, fire_and_forget=True),
        ],
        events=[Event("overflow", 0x8001, data=[("value", INT32)])],
        fields=[Field("precision", UINT16)],
    )
    spec.update(overrides)
    return ServiceInterface(**spec)


class TestMethods:
    def test_lookup_by_name_and_id(self):
        interface = calc_interface()
        assert interface.method("add").method_id == 0x0002
        assert interface.method_by_id(0x0001).name == "set_value"
        assert interface.method_by_id(0x7777) is None

    def test_argument_and_return_names(self):
        interface = calc_interface()
        assert interface.method("set_value").argument_names == ["value"]
        assert interface.method("get_value").return_names == ["value"]

    def test_fire_and_forget_cannot_return(self):
        with pytest.raises(ValueError):
            Method("bad", 0x10, returns=[("x", INT32)], fire_and_forget=True)

    def test_method_id_msb_reserved(self):
        with pytest.raises(ValueError):
            Method("bad", 0x8000)

    def test_duplicate_method_name_rejected(self):
        with pytest.raises(ValueError):
            calc_interface(
                methods=[Method("a", 1), Method("a", 2)], events=[], fields=[]
            )

    def test_duplicate_method_id_rejected(self):
        with pytest.raises(ValueError):
            calc_interface(
                methods=[Method("a", 1), Method("b", 1)], events=[], fields=[]
            )


class TestEvents:
    def test_event_id_requires_msb(self):
        with pytest.raises(ValueError):
            Event("bad", 0x0001)

    def test_lookup(self):
        interface = calc_interface()
        assert interface.event("overflow").event_id == 0x8001
        assert interface.event_by_id(0x8001).name == "overflow"

    def test_duplicate_event_id_rejected(self):
        with pytest.raises(ValueError):
            calc_interface(
                events=[Event("a", 0x8001), Event("b", 0x8001)],
                methods=[],
                fields=[],
            )


class TestFields:
    def test_field_expansion(self):
        interface = calc_interface()
        elements = interface.field_elements("precision")
        assert elements["get"].name == "get_precision"
        assert elements["set"].name == "set_precision"
        assert elements["notify"].name == "precision_changed"
        # Expanded elements are reachable through normal lookups.
        assert interface.method("get_precision").returns[0][0] == "value"
        assert interface.event("precision_changed").event_id & 0x8000

    def test_getter_only_field(self):
        interface = ServiceInterface(
            "S",
            0x10,
            fields=[Field("ro", INT32, has_setter=False, has_notifier=False)],
        )
        elements = interface.field_elements("ro")
        assert elements["get"] is not None
        assert elements["set"] is None
        assert elements["notify"] is None

    def test_write_only_field_rejected(self):
        with pytest.raises(ValueError):
            Field("wo", INT32, has_getter=False, has_notifier=False)

    def test_field_lookup_unknown(self):
        with pytest.raises(KeyError):
            calc_interface().field("nope")

    def test_multiple_fields_get_distinct_ids(self):
        interface = ServiceInterface(
            "S", 0x11, fields=[Field("a", INT32), Field("b", STRING)]
        )
        ids = {
            interface.field_elements(name)[kind].method_id
            for name in ("a", "b")
            for kind in ("get", "set")
        }
        assert len(ids) == 4


class TestValidation:
    def test_service_id_range(self):
        with pytest.raises(ValueError):
            ServiceInterface("S", 0)
        with pytest.raises(ValueError):
            ServiceInterface("S", 0xFFFF)

    def test_repr_mentions_counts(self):
        text = repr(calc_interface())
        assert "Calculator" in text
        assert "0x1234" in text
