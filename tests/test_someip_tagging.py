"""Unit tests for the tagged-message extension and timestamp bypass."""

from hypothesis import given, strategies as st

from repro.someip import TimestampBypass, attach_tag, extract_tag
from repro.time import MS, Tag


class TestTrailer:
    def test_roundtrip(self):
        payload, tag = extract_tag(attach_tag(b"hello", Tag(50 * MS, 3)))
        assert payload == b"hello"
        assert tag == Tag(50 * MS, 3)

    def test_untagged_passthrough(self):
        payload, tag = extract_tag(b"plain old payload")
        assert payload == b"plain old payload"
        assert tag is None

    def test_short_payload_untagged(self):
        payload, tag = extract_tag(b"tiny")
        assert payload == b"tiny"
        assert tag is None

    def test_empty_payload_tagged(self):
        payload, tag = extract_tag(attach_tag(b"", Tag(0, 0)))
        assert payload == b""
        assert tag == Tag(0, 0)

    @given(
        st.binary(max_size=300),
        st.integers(min_value=0, max_value=10**15),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_roundtrip_property(self, payload, time, microstep):
        tag = Tag(time, microstep)
        recovered_payload, recovered_tag = extract_tag(attach_tag(payload, tag))
        assert recovered_payload == payload
        assert recovered_tag == tag

    def test_stock_receiver_sees_longer_payload(self):
        """A non-tag-aware receiver treats the trailer as payload bytes —
        the standard-compatibility property the paper relies on."""
        tagged = attach_tag(b"data", Tag(1, 0))
        assert tagged.startswith(b"data")
        assert len(tagged) == len(b"data") + 20


class TestBypass:
    def test_fifo_order(self):
        bypass = TimestampBypass()
        bypass.deposit(Tag(1, 0))
        bypass.deposit(Tag(2, 0))
        assert bypass.collect() == Tag(1, 0)
        assert bypass.collect() == Tag(2, 0)

    def test_empty_collect_returns_none(self):
        assert TimestampBypass().collect() is None

    def test_len(self):
        bypass = TimestampBypass()
        assert len(bypass) == 0
        bypass.deposit(Tag(0, 0))
        assert len(bypass) == 1
        bypass.collect()
        assert len(bypass) == 0
