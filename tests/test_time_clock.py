"""Unit tests for physical clock models."""

import random

from hypothesis import given, strategies as st

from repro.time import ClockModel, PhysicalClock, SEC


class TestClockModel:
    def test_perfect_clock_maps_identity(self):
        clock = PhysicalClock(ClockModel.perfect())
        for t in (0, 17, 10**12):
            assert clock.local_time(t) == t

    def test_offset(self):
        clock = PhysicalClock(ClockModel(offset_ns=500))
        assert clock.local_time(1000) == 1500

    def test_drift(self):
        clock = PhysicalClock(ClockModel(drift_ppb=1000))  # 1 ppm
        assert clock.local_time(SEC) == SEC + 1000

    def test_sync_error_bound_perfect(self):
        assert ClockModel.perfect().sync_error_bound(10 * SEC) == 0

    def test_sync_error_bound_dominates_observations(self):
        model = ClockModel(offset_ns=100, drift_ppb=500, read_jitter_ns=50)
        clock = PhysicalClock(model, random.Random(1))
        mission = 10 * SEC
        bound = model.sync_error_bound(mission)
        for t in range(0, mission, SEC):
            assert abs(clock.read(t) - t) <= bound


class TestInversion:
    @given(
        st.integers(min_value=-10**6, max_value=10**6),
        st.integers(min_value=-100_000, max_value=100_000),
        st.integers(min_value=0, max_value=10**13),
    )
    def test_global_time_for_never_undershoots(self, offset, drift, local):
        model = ClockModel(offset_ns=offset, drift_ppb=drift)
        clock = PhysicalClock(model)
        g = clock.global_time_for(local)
        assert clock.local_time(g) >= local
        if g > 0:
            assert clock.local_time(g - 1) < local


class TestMonotonicRead:
    def test_reads_never_go_backwards(self):
        model = ClockModel(read_jitter_ns=1000)
        clock = PhysicalClock(model, random.Random(42))
        last = None
        for t in range(0, 100_000, 100):
            value = clock.read(t)
            if last is not None:
                assert value >= last
            last = value

    def test_jitter_requires_rng(self):
        clock = PhysicalClock(ClockModel(read_jitter_ns=100), rng=None)
        assert clock.read(1000) == 1000


class TestSyncErrorBetweenPlatforms:
    def test_two_offset_clocks_within_combined_bound(self):
        a = ClockModel(offset_ns=200)
        b = ClockModel(offset_ns=-300)
        ca, cb = PhysicalClock(a), PhysicalClock(b)
        bound = a.sync_error_bound(SEC) + b.sync_error_bound(SEC)
        for t in range(0, SEC, SEC // 10):
            assert abs(ca.local_time(t) - cb.local_time(t)) <= bound
