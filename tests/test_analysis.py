"""Unit tests for the analysis package."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    ascii_bar_chart,
    compare_traces,
    first_divergence,
    histogram_table,
    render_table,
    summarize,
)
from repro.reactors.telemetry import Trace
from repro.time import Tag


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1))
    def test_bounds_property(self, values):
        import math

        summary = summarize(values)
        assert summary.minimum <= summary.p25 <= summary.median
        assert summary.median <= summary.p75 <= summary.maximum
        # The mean is computed in floating point and may land one ULP
        # outside [min, max] (e.g. for three identical values).
        lo = math.nextafter(summary.minimum, -math.inf)
        hi = math.nextafter(summary.maximum, math.inf)
        assert lo <= summary.mean <= hi

    def test_row_matches_header_length(self):
        summary = summarize([1.0, 2.0])
        assert len(summary.row()) == len(summary.header())


class TestTraceComparison:
    def _trace(self, values):
        trace = Trace()
        for index, value in enumerate(values):
            trace.record(Tag(index, 0), "set", "port", value)
        return trace

    def test_identical_traces(self):
        assert compare_traces([self._trace([1, 2]), self._trace([1, 2])])
        assert first_divergence(self._trace([1, 2]), self._trace([1, 2])) is None

    def test_value_divergence_located(self):
        divergence = first_divergence(self._trace([1, 2, 3]), self._trace([1, 9, 3]))
        assert divergence is not None
        assert divergence.index == 1
        assert "2" in divergence.left_line
        assert "9" in divergence.right_line

    def test_length_divergence_located(self):
        divergence = first_divergence(self._trace([1]), self._trace([1, 2]))
        assert divergence.index == 1
        assert divergence.left_line is None
        assert divergence.right_line is not None

    def test_prefix_divergence_left_longer(self):
        # One trace a strict prefix of the other: the divergence sits at
        # the shorter trace's length, with the short side reported None.
        divergence = first_divergence(self._trace([1, 2, 3]), self._trace([1, 2]))
        assert divergence.index == 2
        assert divergence.right_line is None
        assert divergence.left_line is not None
        assert "3" in divergence.left_line

    def test_prefix_divergence_empty_side(self):
        divergence = first_divergence(self._trace([]), self._trace([7]))
        assert divergence.index == 0
        assert divergence.left_line is None
        assert "7" in divergence.right_line

    @given(
        st.lists(st.integers(min_value=0, max_value=9), max_size=8),
        st.integers(min_value=1, max_value=4),
    )
    def test_prefix_divergence_property(self, values, extra):
        shorter = self._trace(values)
        longer = self._trace(values + list(range(extra)))
        divergence = first_divergence(shorter, longer)
        assert divergence.index == len(values)
        assert divergence.left_line is None
        assert divergence.right_line is not None
        mirrored = first_divergence(longer, shorter)
        assert mirrored.index == len(values)
        assert mirrored.right_line is None
        assert mirrored.left_line == divergence.right_line

    def test_compare_needs_one(self):
        with pytest.raises(ValueError):
            compare_traces([])

    def test_divergence_str(self):
        divergence = first_divergence(self._trace([1]), self._trace([2]))
        assert "diverge at record 0" in str(divergence)


class TestRenderers:
    def test_table_alignment(self):
        table = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_table_row_width_validated(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_table_title(self):
        assert render_table(["x"], [["1"]], title="T").startswith("T\n")

    def test_histogram_probabilities_sum(self):
        text = histogram_table({0: 1, 1: 3}, "H")
        assert "0.250" in text
        assert "0.750" in text

    def test_histogram_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram_table({}, "H")

    def test_bar_chart_legend_and_bars(self):
        chart = ascii_bar_chart(
            [("r0", {"x": 1.0, "y": 0.0}), ("r1", {"x": 2.0, "y": 2.0})],
            categories=["x", "y"],
            title="C",
        )
        assert "A = x" in chart
        assert "B = y" in chart
        assert chart.count("\n") == 4
        last = chart.splitlines()[-1]
        assert "A" in last and "B" in last
