"""Property-based tests on core invariants (hypothesis).

These sample the space of programs/configurations rather than fixing a
handful: random lock programs must preserve mutual exclusion, random
reactor pipelines must be schedule-independent, random payload schemas
must round-trip, and the safe-to-process arithmetic must be monotone.
"""

from hypothesis import given, settings, strategies as st

from repro.dear.stp import StpConfig
from repro.reactors import Environment, Reactor
from repro.sim import Acquire, Compute, Release, World
from repro.sim.platform import MINNOWBOARD, PlatformConfig
from repro.someip.serialization import (
    Array,
    BOOL,
    FLOAT64,
    INT32,
    INT64,
    STRING,
    Struct,
    UINT8,
    UINT16,
    UINT32,
)
from repro.time import MS, Tag

# ---------------------------------------------------------------------------
# Random lock programs: mutual exclusion and completion.
# ---------------------------------------------------------------------------

lock_step = st.tuples(
    st.integers(min_value=0, max_value=2),     # which mutex
    st.integers(min_value=0, max_value=50_000)  # critical-section length (ns)
)
lock_program = st.lists(lock_step, min_size=1, max_size=5)


class TestRandomLockPrograms:
    @given(
        st.lists(lock_program, min_size=2, max_size=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_mutual_exclusion_and_completion(self, programs, seed):
        """Threads acquiring mutexes in a *fixed global order* (to avoid
        deadlock) must preserve mutual exclusion and all terminate."""
        world = World(seed)
        platform = world.add_platform(
            "p", PlatformConfig(num_cores=2, dispatch_jitter_ns=10_000,
                                timer_jitter_ns=0)
        )
        mutexes = [platform.mutex(f"m{i}") for i in range(3)]
        occupancy = {i: 0 for i in range(3)}
        violations = []
        finished = []

        def body(steps, name):
            for mutex_index, hold_ns in sorted(steps):
                yield Acquire(mutexes[mutex_index])
                occupancy[mutex_index] += 1
                if occupancy[mutex_index] > 1:
                    violations.append(name)
                if hold_ns:
                    yield Compute(hold_ns)
                occupancy[mutex_index] -= 1
                yield Release(mutexes[mutex_index])
            finished.append(name)

        for index, steps in enumerate(programs):
            platform.spawn(f"t{index}", body(steps, index))
        world.run_to_completion()
        assert violations == []
        assert sorted(finished) == list(range(len(programs)))


# ---------------------------------------------------------------------------
# Random reactor pipelines: schedule independence.
# ---------------------------------------------------------------------------


class _Stage(Reactor):
    def __init__(self, name, owner, increment, cost):
        super().__init__(name, owner)
        self.inp = self.input("inp")
        self.out = self.output("out")
        self.reaction(
            "work",
            triggers=[self.inp],
            effects=[self.out],
            body=lambda ctx: ctx.set(self.out, ctx.get(self.inp) + increment),
            exec_time=cost,
        )


class _Source(Reactor):
    def __init__(self, name, owner, period):
        super().__init__(name, owner)
        self.out = self.output("out")
        tick = self.timer("tick", offset=0, period=period)
        self.n = 0

        def emit(ctx):
            self.n += 1
            ctx.set(self.out, self.n)

        self.reaction("emit", triggers=[tick], effects=[self.out], body=emit)


pipeline_spec = st.lists(
    st.tuples(
        st.integers(min_value=-5, max_value=5),       # increment
        st.integers(min_value=0, max_value=3 * MS),   # exec cost
    ),
    min_size=1,
    max_size=5,
)


class TestRandomReactorPipelines:
    @given(pipeline_spec, st.integers(min_value=2, max_value=20))
    @settings(max_examples=25, deadline=None)
    def test_trace_independent_of_platform_seed(self, stages, period_ms):
        """Any linear pipeline yields the same logical trace for any
        platform seed (the reactor determinism guarantee)."""

        def run(seed):
            world = World(seed)
            platform = world.add_platform("p", MINNOWBOARD)
            env = Environment(timeout=100 * MS)
            source = _Source("source", env, period_ms * MS)
            previous = source.out
            for index, (increment, cost) in enumerate(stages):
                stage = _Stage(f"s{index}", env, increment, cost)
                env.connect(previous, stage.inp)
                previous = stage.out
            env.start(platform)
            world.run_for(2_000 * MS)
            assert env.terminated
            return env.trace.fingerprint()

        assert run(1) == run(2)

    @given(pipeline_spec)
    @settings(max_examples=25, deadline=None)
    def test_fast_mode_matches_sim_mode_logically(self, stages):
        """Fast (logical-only) execution and platform-embedded execution
        of the same program produce the same logical trace."""

        def build(env):
            source = _Source("source", env, 10 * MS)
            previous = source.out
            for index, (increment, cost) in enumerate(stages):
                stage = _Stage(f"s{index}", env, increment, cost)
                env.connect(previous, stage.inp)
                previous = stage.out

        fast_env = Environment(timeout=50 * MS)
        build(fast_env)
        fast_env.execute()

        world = World(7)
        platform = world.add_platform("p", MINNOWBOARD)
        sim_env = Environment(timeout=50 * MS)
        build(sim_env)
        sim_env.start(platform)
        world.run_for(1_000 * MS)
        assert sim_env.terminated
        assert fast_env.trace.fingerprint() == sim_env.trace.fingerprint()


# ---------------------------------------------------------------------------
# Random payload schemas round-trip.
# ---------------------------------------------------------------------------


def _schema_and_value():
    scalar = st.sampled_from([
        (UINT8, st.integers(0, 255)),
        (UINT16, st.integers(0, 2**16 - 1)),
        (UINT32, st.integers(0, 2**32 - 1)),
        (INT32, st.integers(-(2**31), 2**31 - 1)),
        (INT64, st.integers(-(2**63), 2**63 - 1)),
        (BOOL, st.booleans()),
        (STRING, st.text(max_size=20)),
        (FLOAT64, st.floats(allow_nan=False, allow_infinity=False)),
    ])

    def extend(base):
        spec, values = base
        return st.one_of(
            st.just((Array(spec), st.lists(values, max_size=4))),
            st.just((spec, values)),
        )

    return scalar.flatmap(extend)


class TestRandomSchemas:
    @given(
        st.lists(_schema_and_value(), min_size=1, max_size=5).flatmap(
            lambda fields: st.tuples(
                st.just(
                    Struct([(f"f{i}", spec) for i, (spec, _) in enumerate(fields)])
                ),
                st.tuples(*(values for _, values in fields)),
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_struct_roundtrip(self, schema_and_values):
        spec, values = schema_and_values
        payload = {f"f{i}": value for i, value in enumerate(values)}
        assert spec.from_bytes(spec.to_bytes(payload)) == payload


# ---------------------------------------------------------------------------
# Safe-to-process arithmetic.
# ---------------------------------------------------------------------------


class TestStpArithmetic:
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=10**8),
        st.integers(min_value=0, max_value=10**8),
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=0, max_value=1000),
    )
    def test_release_delay_monotone_and_order_preserving(
        self, latency, error, delta, time, microstep
    ):
        config = StpConfig(latency_bound_ns=latency, clock_error_ns=error)
        assert config.release_delay_ns == latency + error
        tag = Tag(time, microstep)
        later = Tag(time + delta + 1, 0)
        shifted = Tag(tag.time + config.release_delay_ns, tag.microstep)
        shifted_later = Tag(later.time + config.release_delay_ns, later.microstep)
        # Adding the same release delay preserves tag order strictly.
        assert shifted < shifted_later
