"""Tests for the ``repro.explore`` subsystem.

Covers the acceptance criteria of the exploration tentpole:

* the scheduler's decision-source refactor is bit-exact against the
  pre-refactor RNG draw sequence (pinned DEAR trace fingerprints);
* same root seed => identical recorded decision trace, and replaying a
  trace (RNG bypassed) reproduces identical telemetry;
* PCT-style preemption injection finds a frame-dropping schedule in
  fewer executions than uniform-random seed sweeping, at fixed seeds;
* ddmin shrinks a failing schedule to a 1-minimal preemption set that
  still reproduces, including under record/replay;
* the DEAR variant is trace-fingerprint-identical across 100+ explored
  in-budget schedules, and over-budget schedules diverge only with a
  flagged violation — never silently.
"""

import json

import pytest

from repro.apps.brake.det import run_det_brake_assistant
from repro.apps.brake.nondet import run_nondet_brake_assistant
from repro.explore import (
    IN_BUDGET_PREEMPT_NS,
    DecisionTrace,
    Explorer,
    InterventionSchedule,
    PctStrategy,
    PreemptionPoint,
    RandomSweepStrategy,
    ReplayDivergence,
    ScheduleRecorder,
    ScheduleReplayer,
    calibration_scenario,
    is_scheduler_stream,
    shrink_schedule,
    verify_determinism,
)
from repro.harness.sweep import SweepRunner
from repro.sim.rng import RngTree, stream_hooks

# DEAR per-environment trace fingerprints of the unperturbed reference
# run (seed 0, 30-frame calibration scenario, deterministic camera),
# captured before the scheduler's pluggable decision-source refactor.
# They pin two contracts at once: the refactor preserved the historical
# RNG draw sequence bit-exactly, and the simulation remains reproducible.
REFERENCE_FINGERPRINTS = {
    "adapter":
        "c128db57970e9f9361b80ac1a8d3724e0e37a97b8065387665606355a1c6842d",
    "preprocessing":
        "898e379da572b9a66735aa8be0877068f6c4806d679bae6ebde86008a4c9cd5d",
    "computer-vision":
        "e729799f30db230b41c68061fac06acd1e50d8ad99408d0d14ad3c5bdaccd750",
    "eba":
        "bf52905aab178b8be1411cf806430a0786a6e9c6f5907be52f3e6a63e96421dc",
}


def _sweep():
    return SweepRunner(workers=1, use_cache=False)


def _det_scenario(n_frames=30):
    return calibration_scenario(n_frames, deterministic_camera=True)


class TestStreamHooks:
    def test_hook_sees_scheduler_streams(self):
        seen = []

        def hook(path, rng):
            seen.append(path)
            return None

        with stream_hooks(hook):
            tree = RngTree(0)
            tree.child("platform.p").stream("scheduler")
            tree.child("platform.p").stream("camera")
        assert any(is_scheduler_stream(path) for path in seen)
        assert any(not is_scheduler_stream(path) for path in seen)

    def test_hooks_do_not_leak_past_the_context(self):
        seen = []
        with stream_hooks(lambda path, rng: seen.append(path)):
            RngTree(0).stream("scheduler")
        count = len(seen)
        RngTree(0).stream("scheduler")
        assert len(seen) == count

    def test_is_scheduler_stream(self):
        assert is_scheduler_stream("scheduler")
        assert is_scheduler_stream("platform.fusion-ecu/scheduler")
        assert not is_scheduler_stream("platform.fusion-ecu/camera")
        assert not is_scheduler_stream("platform.p/scheduler-extra")


class TestSchedulerBackCompat:
    def test_decision_source_refactor_is_bit_exact(self):
        result = run_det_brake_assistant(0, _det_scenario())
        assert result.trace_fingerprints == REFERENCE_FINGERPRINTS

    def test_empty_schedule_reproduces_baseline(self):
        baseline = run_det_brake_assistant(0, _det_scenario())
        controller = InterventionSchedule(base_seed=0).controller()
        with stream_hooks(controller):
            hooked = run_det_brake_assistant(0, _det_scenario())
        assert hooked.trace_fingerprints == baseline.trace_fingerprints
        assert controller.applied == []


class TestRecordReplay:
    def test_same_seed_identical_decision_trace(self):
        scenario = calibration_scenario(20)
        traces = []
        for _ in range(2):
            recorder = ScheduleRecorder(base_seed=7)
            with stream_hooks(recorder):
                run_nondet_brake_assistant(7, scenario)
            traces.append(recorder.trace)
        assert len(traces[0].records) > 500
        assert traces[0].fingerprint() == traces[1].fingerprint()

    def test_different_seed_different_decision_trace(self):
        scenario = calibration_scenario(20)
        fingerprints = []
        for seed in (0, 1):
            recorder = ScheduleRecorder(base_seed=seed)
            with stream_hooks(recorder):
                run_nondet_brake_assistant(seed, scenario)
            fingerprints.append(recorder.trace.fingerprint())
        assert fingerprints[0] != fingerprints[1]

    def test_replay_reproduces_telemetry_bit_exactly(self):
        scenario = calibration_scenario(20)
        recorder = ScheduleRecorder(base_seed=3)
        with stream_hooks(recorder):
            recorded = run_nondet_brake_assistant(3, scenario)

        replayer = ScheduleReplayer(recorder.trace)
        with stream_hooks(replayer):
            replayed = run_nondet_brake_assistant(3, scenario)
        assert replayer.consumed == len(recorder.trace.records)
        assert replayed.trace_fingerprints == recorded.trace_fingerprints
        assert replayed.commands == recorded.commands
        assert replayed.errors.as_dict() == recorded.errors.as_dict()

    def test_trace_json_round_trip(self, tmp_path):
        recorder = ScheduleRecorder(base_seed=3)
        with stream_hooks(recorder):
            run_nondet_brake_assistant(3, calibration_scenario(10))
        path = tmp_path / "trace.json"
        recorder.trace.save(path)
        loaded = DecisionTrace.load(path)
        assert loaded.base_seed == 3
        assert loaded.fingerprint() == recorder.trace.fingerprint()
        assert loaded.records == recorder.trace.records
        # The on-disk form is plain JSON, inspectable by other tooling.
        assert json.loads(path.read_text())["format"] == "decision-trace/v1"

    def test_strict_replay_flags_divergence(self):
        recorder = ScheduleRecorder(base_seed=3)
        with stream_hooks(recorder):
            run_nondet_brake_assistant(3, calibration_scenario(10))
        # A longer run needs more decisions than were recorded: the
        # strict replayer must refuse rather than silently improvise.
        replayer = ScheduleReplayer(recorder.trace)
        with pytest.raises(ReplayDivergence):
            with stream_hooks(replayer):
                run_nondet_brake_assistant(3, calibration_scenario(15))


class TestInterventionSchedules:
    def test_schedule_round_trip(self):
        schedule = InterventionSchedule(
            base_seed=4,
            preemptions=(
                PreemptionPoint(10, 1000, "a"),
                PreemptionPoint(20, 2000, "b"),
            ),
            label="x",
        )
        assert InterventionSchedule.from_dict(schedule.to_dict()) == schedule

    def test_describe_is_human_readable(self):
        point = PreemptionPoint(137, 25_000_000, "fusion-ecu.periodic.preprocessing")
        text = point.describe()
        assert "dispatch #137" in text
        assert "fusion-ecu.periodic.preprocessing" in text
        assert "25.0 ms" in text

    def test_controller_applies_and_resolves_threads(self):
        schedule = InterventionSchedule(
            base_seed=0, preemptions=(PreemptionPoint(5, IN_BUDGET_PREEMPT_NS),)
        )
        controller = schedule.controller()
        with stream_hooks(controller):
            run_nondet_brake_assistant(0, calibration_scenario(5))
        assert len(controller.applied) == 1
        assert controller.applied[0].site == 5
        assert controller.applied[0].thread != ""

    def test_exclusion_suppresses_matching_threads(self):
        schedule = InterventionSchedule(
            base_seed=0, preemptions=(PreemptionPoint(5, IN_BUDGET_PREEMPT_NS),)
        )
        controller = schedule.controller()
        with stream_hooks(controller):
            run_nondet_brake_assistant(0, calibration_scenario(5))
        hit = controller.applied[0].thread

        baseline = run_nondet_brake_assistant(0, calibration_scenario(5))
        excluded = schedule.controller(exclude=(hit,))
        with stream_hooks(excluded):
            result = run_nondet_brake_assistant(0, calibration_scenario(5))
        assert excluded.applied == []
        assert [p.site for p in excluded.suppressed] == [5]
        # Suppression means baseline behaviour, bit for bit.
        assert result.trace_fingerprints == baseline.trace_fingerprints


class TestExplorationSearch:
    def test_pct_beats_random_at_fixed_seeds(self):
        scenario = calibration_scenario(50)
        pct = Explorer(
            scenario=scenario, strategy=PctStrategy(), sweep=_sweep()
        ).explore(budget=40)
        random_sweep = Explorer(
            scenario=scenario, strategy=RandomSweepStrategy(), sweep=_sweep()
        ).explore(budget=40)

        assert pct.found is not None, "PCT must find a frame drop"
        assert random_sweep.found is not None, "random must eventually find one"
        # The acceptance gap: PCT needs strictly fewer executions.
        assert pct.executions_used < random_sweep.executions_used
        assert pct.executions_used <= 5
        assert random_sweep.executions_used >= 15
        # Found outcomes carry resolved thread names for the report.
        assert all(p.thread for p in pct.found.schedule.preemptions)

    def test_explorer_respects_budget(self):
        result = Explorer(
            scenario=calibration_scenario(10),
            strategy=PctStrategy(depth=0),  # baseline-only schedules
            sweep=_sweep(),
        ).explore(budget=3)
        assert result.found is None
        assert len(result.executions) == 3


class TestShrink:
    @pytest.fixture(scope="class")
    def found(self):
        explorer = Explorer(
            scenario=calibration_scenario(50),
            strategy=PctStrategy(),
            sweep=_sweep(),
        )
        result = explorer.explore(budget=40)
        assert result.found is not None
        return explorer, result.found

    def test_shrink_is_one_minimal_and_reproduces(self, found):
        explorer, outcome = found
        shrunk = shrink_schedule(explorer, outcome.schedule)
        minimal = shrunk.minimal
        assert 1 <= len(minimal.preemptions) <= len(outcome.schedule.preemptions)
        assert shrunk.errors and sum(shrunk.errors.values()) > 0

        # Still reproduces.
        result, _ = explorer.run_schedule(minimal)
        assert result.errors.total() > 0
        # 1-minimal: dropping any single remaining point loses the bug.
        for point in minimal.preemptions:
            rest = [p for p in minimal.preemptions if p != point]
            result, _ = explorer.run_schedule(minimal.with_points(rest))
            assert result.errors.total() == 0, (
                f"{point.describe()} is not needed for the failure"
            )

    def test_minimal_schedule_reproduces_under_replay(self, found):
        explorer, outcome = found
        shrunk = shrink_schedule(explorer, outcome.schedule)
        recorded_result, trace = explorer.record(shrunk.minimal)
        assert recorded_result.errors.total() > 0

        replayer = ScheduleReplayer(trace)
        with stream_hooks(replayer):
            replayed = run_nondet_brake_assistant(
                shrunk.minimal.base_seed, explorer.scenario
            )
        assert replayed.errors.as_dict() == recorded_result.errors.as_dict()
        assert replayed.trace_fingerprints == recorded_result.trace_fingerprints

    def test_shrink_requires_a_reproducing_schedule(self):
        explorer = Explorer(scenario=calibration_scenario(10), sweep=_sweep())
        benign = InterventionSchedule(base_seed=0)
        with pytest.raises(ValueError):
            shrink_schedule(explorer, benign)


class TestDeterminismVerification:
    def test_in_budget_schedules_are_fingerprint_identical_100_plus(self):
        scenario = _det_scenario()
        horizon = Explorer(
            experiment=run_det_brake_assistant, scenario=scenario, sweep=_sweep()
        ).horizon
        strategy = PctStrategy(preempt_ns=IN_BUDGET_PREEMPT_NS, seed=9)
        schedules = [
            strategy.schedule_for(index + 1, 0, horizon) for index in range(110)
        ]
        result = verify_determinism(schedules, scenario, sweep=_sweep())
        assert result.schedules == 110
        assert result.identical == 110
        assert result.ok
        assert result.reference == REFERENCE_FINGERPRINTS

    def test_over_budget_divergence_is_always_flagged(self):
        scenario = _det_scenario()
        horizon = Explorer(
            experiment=run_det_brake_assistant, scenario=scenario, sweep=_sweep()
        ).horizon
        strategy = PctStrategy(seed=9)  # 25 ms preemptions: deadline-busting
        schedules = [
            strategy.schedule_for(index + 1, 0, horizon) for index in range(20)
        ]
        result = verify_determinism(schedules, scenario, sweep=_sweep())
        assert result.silent_divergences == []
        assert result.ok
        # The big preemptions genuinely perturb runs — and every
        # divergence comes with an observable violation.
        assert len(result.flagged) > 0
        for verdict in result.flagged:
            assert verdict.deadline_misses > 0 or verdict.stp_violations > 0
