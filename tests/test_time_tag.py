"""Unit tests for superdense time tags."""

import pytest
from hypothesis import given, strategies as st

from repro.time import FOREVER, MS, NEVER, Tag

tags = st.builds(
    Tag,
    st.integers(min_value=0, max_value=10**15),
    st.integers(min_value=0, max_value=1000),
)


class TestOrdering:
    def test_lexicographic(self):
        assert Tag(1, 0) < Tag(2, 0)
        assert Tag(1, 5) < Tag(2, 0)
        assert Tag(1, 0) < Tag(1, 1)

    def test_equality(self):
        assert Tag(5, 2) == Tag(5, 2)
        assert Tag(5, 2) != Tag(5, 3)

    def test_sentinels(self):
        assert NEVER < Tag(0, 0) < FOREVER

    @given(tags, tags)
    def test_total_order(self, a, b):
        assert (a < b) + (a == b) + (a > b) == 1


class TestDelay:
    def test_positive_delay_resets_microstep(self):
        assert Tag(10 * MS, 7).delay(5 * MS) == Tag(15 * MS, 0)

    def test_zero_delay_bumps_microstep(self):
        assert Tag(10, 3).delay(0) == Tag(10, 4)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Tag(0, 0).delay(-1)

    @given(tags, st.integers(min_value=0, max_value=10**12))
    def test_delay_strictly_increases(self, tag, d):
        assert tag.delay(d) > tag

    def test_negative_microstep_rejected(self):
        with pytest.raises(ValueError):
            Tag(0, -1)


class TestAdvance:
    def test_advance_to_later_time(self):
        assert Tag(5, 9).advance_to(8) == Tag(8, 0)

    def test_advance_to_same_time(self):
        assert Tag(5, 9).advance_to(5) == Tag(5, 10)

    def test_advance_backwards_rejected(self):
        with pytest.raises(ValueError):
            Tag(5, 0).advance_to(4)


class TestSerialization:
    @given(tags)
    def test_tuple_roundtrip(self, tag):
        assert Tag.from_tuple(tag.as_tuple()) == tag

    def test_str(self):
        assert str(Tag(50 * MS, 2)) == "(50ms, 2)"
