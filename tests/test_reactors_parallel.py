"""Multi-worker reaction execution.

The paper: "A reactor runtime scheduler is responsible for transparently
exploiting concurrency in the APG by mapping independent reactions to
separate worker threads."  These tests check (a) the logical behaviour
is bit-identical to sequential execution, and (b) the physical lag of a
parallel level actually shrinks (max instead of sum of costs).
"""

import pytest

from repro.errors import ReactorError
from repro.reactors import Environment, Reactor
from repro.sim import World
from repro.sim.platform import PlatformConfig
from repro.time import MS


def wide_program(env, branches=4, cost=10 * MS, rounds=3):
    """One source fanning out to *branches* independent heavy stages,
    all merging (by count) into a sink that records its lag."""

    class Source(Reactor):
        def __init__(self, name, owner):
            super().__init__(name, owner)
            self.out = self.output("out")
            tick = self.timer("tick", offset=0, period=100 * MS)
            self.n = 0

            def emit(ctx):
                if self.n < rounds:
                    self.n += 1
                    ctx.set(self.out, self.n)

            self.reaction("emit", triggers=[tick], effects=[self.out], body=emit)

    class Branch(Reactor):
        def __init__(self, name, owner, index):
            super().__init__(name, owner)
            self.inp = self.input("inp")
            self.out = self.output("out")
            self.reaction(
                "work",
                triggers=[self.inp],
                effects=[self.out],
                body=lambda ctx: ctx.set(self.out, ctx.get(self.inp) * 10 + index),
                exec_time=cost,
            )

    class Sink(Reactor):
        def __init__(self, name, owner):
            super().__init__(name, owner)
            self.inputs = [self.input(f"in{i}") for i in range(branches)]
            self.lags = []
            self.values = []

            def collect(ctx):
                self.lags.append(ctx.lag())
                self.values.append(
                    tuple(ctx.get(port) for port in self.inputs)
                )

            self.reaction("collect", triggers=self.inputs, body=collect)

    source = Source("source", env)
    sink = Sink("sink", env)
    for index in range(branches):
        branch = Branch(f"branch{index}", env, index)
        env.connect(source.out, branch.inp)
        env.connect(branch.out, sink.inputs[index])
    return sink


def run_wide(workers, seed=0, branches=4, cost=10 * MS):
    world = World(seed)
    platform = world.add_platform(
        "p",
        PlatformConfig(num_cores=8, dispatch_jitter_ns=0, timer_jitter_ns=0),
    )
    env = Environment(timeout=250 * MS)
    sink = wide_program(env, branches=branches, cost=cost)
    env.start(platform, workers=workers)
    world.run_for(2_000 * MS)
    assert env.terminated
    return sink, env


class TestLogicalEquivalence:
    def test_same_values_any_worker_count(self):
        sequential, _ = run_wide(workers=1)
        parallel, _ = run_wide(workers=4)
        assert sequential.values == parallel.values
        assert len(parallel.values) == 3

    def test_same_trace_any_worker_count(self):
        _, env1 = run_wide(workers=1)
        _, env4 = run_wide(workers=4)
        assert env1.trace.fingerprint() == env4.trace.fingerprint()

    def test_trace_stable_across_seeds_with_workers(self):
        fingerprints = {run_wide(workers=3, seed=seed)[1].trace.fingerprint()
                        for seed in range(3)}
        assert len(fingerprints) == 1


class TestPhysicalSpeedup:
    def test_parallel_level_lag_is_max_not_sum(self):
        branches, cost = 4, 10 * MS
        sequential, _ = run_wide(workers=1, branches=branches, cost=cost)
        parallel, _ = run_wide(workers=branches, branches=branches, cost=cost)
        # Sequential: the sink sees all four branch costs serialized.
        assert min(sequential.lags) >= branches * cost
        # Parallel: roughly a single branch cost.
        assert max(parallel.lags) < 2 * cost

    def test_partial_pool_in_between(self):
        branches, cost = 4, 10 * MS
        two_workers, _ = run_wide(workers=2, branches=branches, cost=cost)
        assert min(two_workers.lags) >= 2 * cost
        assert max(two_workers.lags) < 3 * cost


class TestValidation:
    def test_zero_workers_rejected(self):
        world = World(0)
        platform = world.add_platform("p", PlatformConfig())
        env = Environment()
        reactor = Reactor("r", env)
        start = reactor.timer("start", offset=0)
        reactor.reaction("go", triggers=[start], body=lambda ctx: None)
        with pytest.raises(ReactorError):
            env.start(platform, workers=0)
