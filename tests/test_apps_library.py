"""End-to-end tests for the multi-ECU scenario library and app registry."""

from dataclasses import replace

import pytest

from repro import apps, obs
from repro.apps.lib import (
    FailoverScenario,
    FusionScenario,
    MixedCriticalityScenario,
)
from repro.apps.registry import AppDefinition
from repro.harness import ScenarioSpec
from repro.obs.flows import flow_report, validate_flow_report

LIBRARY_APPS = ("fusion", "failover", "mixedcrit")

#: Small-but-representative workloads for each app (fast CI runs).
SMALL_SCENARIOS = {
    "fusion": FusionScenario(n_frames=24),
    "failover": FailoverScenario(n_frames=24),
    "mixedcrit": MixedCriticalityScenario(n_frames=60),
}


class TestRegistry:
    def test_brake_and_library_apps_registered(self):
        names = apps.names()
        assert "brake" in names
        for name in LIBRARY_APPS:
            assert name in names

    def test_library_filter_excludes_brake(self):
        library = apps.names(library=True)
        assert "brake" not in library
        assert set(LIBRARY_APPS) <= set(library)

    def test_unknown_app_raises_with_known_names(self):
        with pytest.raises(KeyError):
            apps.get("no-such-app")

    def test_every_app_has_det_and_nondet(self):
        for name in LIBRARY_APPS:
            assert apps.get(name).variants() == ("det", "nondet")

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            apps.get("fusion").runner("hybrid")

    def test_definition_needs_runners(self):
        with pytest.raises(ValueError):
            AppDefinition(
                name="empty", title="", runners={}, scenario_type=FusionScenario
            )

    def test_scenario_round_trips_through_registry(self):
        for name in LIBRARY_APPS:
            definition = apps.get(name)
            scenario = SMALL_SCENARIOS[name]
            assert definition.load_scenario(
                definition.dump_scenario(scenario)
            ) == scenario

    def test_library_topologies_have_at_least_three_nodes(self):
        for name in LIBRARY_APPS:
            definition = apps.get(name)
            topo = definition.topology_for(definition.default_scenario())
            assert len(topo.nodes) >= 3
            assert not topo.is_trivial


class TestEndToEnd:
    @pytest.mark.parametrize("app", LIBRARY_APPS)
    @pytest.mark.parametrize("variant", ["det", "nondet"])
    def test_runs_to_completion(self, app, variant):
        scenario = SMALL_SCENARIOS[app]
        result = apps.get(app).runner(variant)(0, scenario)
        assert result.n_frames == scenario.n_frames
        assert result.commands  # the sink produced output

    @pytest.mark.parametrize("app", LIBRARY_APPS)
    def test_det_flow_report_attributes_every_loss(self, app):
        """Under DEAR every flow is delivered or carries exactly one
        explicit (layer, cause) — nothing unattributed."""
        scenario = SMALL_SCENARIOS[app]
        with obs.capture(flows=True) as observation:
            apps.get(app).runner("det")(0, scenario)
        report = flow_report(observation.flows)
        assert validate_flow_report(report) == []
        assert report["summary"]["unattributed"] == 0
        for entry in report["flows"].values():
            delivered = entry["delivered_ns"] is not None
            dropped = entry["drop"] is not None
            assert delivered != dropped  # exactly one outcome per flow

    @pytest.mark.parametrize("app", LIBRARY_APPS)
    def test_dear_delivers_no_less_than_stock(self, app):
        scenario = SMALL_SCENARIOS[app]

        def delivered(variant):
            with obs.capture(flows=True) as observation:
                apps.get(app).runner(variant)(0, scenario)
            return flow_report(observation.flows)["summary"]["delivered"]

        assert delivered("det") >= delivered("nondet")

    @pytest.mark.parametrize("app", LIBRARY_APPS)
    def test_deterministic_inputs_fix_trace_across_seeds(self, app):
        """The library analogue of ``deterministic_camera``: with inputs
        held seed-independent, DEAR's logical trace fingerprints are
        identical for every world seed."""
        scenario = replace(SMALL_SCENARIOS[app], deterministic_inputs=True)
        runner = apps.get(app).runner("det")
        fingerprints = [runner(seed, scenario).trace_fingerprints for seed in (0, 1)]
        assert fingerprints[0] == fingerprints[1]
        assert fingerprints[0]  # non-empty: the traces recorded something


class TestSpecDispatch:
    def test_run_one_dispatches_to_library_runner(self):
        spec = ScenarioSpec(
            app="fusion", variant="det", scenario=SMALL_SCENARIOS["fusion"]
        )
        result = spec.run_one(0)
        assert result.n_frames == SMALL_SCENARIOS["fusion"].n_frames

    def test_library_spec_serializes_as_v2(self):
        spec = ScenarioSpec(app="mixedcrit", scenario=SMALL_SCENARIOS["mixedcrit"])
        data = spec.to_dict()
        assert data["format"] == "scenario-spec/v2"
        assert ScenarioSpec.from_dict(data) == spec

    def test_failover_spec_defaults_to_its_outage_plan(self):
        spec = ScenarioSpec(app="failover", scenario=SMALL_SCENARIOS["failover"])
        plan = spec.effective_faults()
        assert plan is not None and not plan.is_empty

    def test_brake_spec_defaults_to_no_faults(self):
        assert ScenarioSpec().effective_faults() is None

    def test_variant_validated_against_app_runners(self):
        with pytest.raises(ValueError):
            ScenarioSpec(app="fusion", variant="turbo")

    def test_sweep_name_includes_app_for_library_specs(self):
        assert ScenarioSpec(app="fusion").sweep_name() == "spec-fusion-det"
        assert ScenarioSpec().sweep_name() == "spec-det"
