"""Failure injection: violated assumptions must be *observable*.

The paper argues that DEAR "translates any violation of one of the
assumptions directly into observable errors".  These tests violate each
assumption on purpose — network latency above the assumed ``L``, clock
skew above the assumed ``E``, deadlines below WCET — and check the
violation is counted, never silent.
"""


from repro.ara import AraProcess, Event, Method, ServiceInterface
from repro.dear import (
    ClientEventTransactor,
    ServerEventTransactor,
    StpConfig,
    TransactorConfig,
)
from repro.network import (
    ConstantLatency,
    NetworkInterface,
    SpikyLatency,
    Switch,
    SwitchConfig,
)
from repro.reactors import Environment, Reactor
from repro.sim import World
from repro.sim.platform import CALM, PlatformConfig
from repro.someip import SdDaemon
from repro.someip.serialization import INT32
from repro.someip.wire import ReturnCode
from repro.time import ClockModel, MS, SEC

PULSE = ServiceInterface(
    "Pulse", 0x5000,
    methods=[Method("noop", 1)],
    events=[Event("pulse", 0x8001, data=[("n", INT32)])],
)


def build_world(seed=0, switch_config=None, client_clock=None):
    world = World(seed)
    switch = Switch(world.sim, world.rng.stream("net"), switch_config)
    world.attach_network(switch)
    for host, clock in (("server", None), ("client", client_clock)):
        config = CALM if clock is None else PlatformConfig(
            num_cores=1, clock=clock, dispatch_jitter_ns=0, timer_jitter_ns=0
        )
        platform = world.add_platform(host, config)
        SdDaemon(platform, NetworkInterface(platform, switch))
    return world


class Publisher(Reactor):
    def __init__(self, name, owner, count=10, period=20 * MS, offset=300 * MS):
        super().__init__(name, owner)
        self.out = self.output("out")
        # The offset leaves room for discovery + subscription even when
        # the SD handshake itself rides a degraded network.
        tick = self.timer("tick", offset=offset, period=period)
        self.n = 0

        def fire(ctx):
            if self.n < count:
                self.n += 1
                ctx.set(self.out, self.n)

        self.reaction("fire", triggers=[tick], effects=[self.out], body=fire)


class Subscriber(Reactor):
    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.inp = self.input("inp")
        self.received = []
        # A local timer advances the subscriber's logical time, so late
        # arrivals are actually late relative to something.
        self.timer("local", offset=0, period=1 * MS)
        self.reaction(
            "recv", triggers=[self.inp],
            body=lambda ctx: self.received.append((ctx.tag, ctx.get(self.inp))),
        )


def run_pulse_chain(seed, switch_config, stp, client_clock=None, count=10):
    """A publisher on 'server' streaming to a subscriber on 'client'."""
    world = build_world(seed, switch_config, client_clock)
    config = TransactorConfig(deadline_ns=5 * MS, stp=stp)

    server_process = AraProcess(world.platform("server"), "pub", tag_aware=True)
    server_env = Environment(name="pub", timeout=2 * SEC)
    publisher = Publisher("publisher", server_env, count=count)
    skeleton = server_process.create_skeleton(PULSE, 1)
    skeleton.implement("noop", lambda: None)
    tx = ServerEventTransactor("tx", server_env, server_process, skeleton,
                               "pulse", config)
    server_env.connect(publisher.out, tx.inp)
    skeleton.offer()
    server_env.start(world.platform("server"))

    client_process = AraProcess(world.platform("client"), "sub", tag_aware=True)
    client_env = Environment(name="sub", timeout=3 * SEC)
    subscriber = Subscriber("subscriber", client_env)
    holder = {}

    def setup():
        proxy = yield from client_process.find_service(PULSE, 1)
        rx = ClientEventTransactor("rx", client_env, client_process, proxy,
                                   "pulse", config)
        client_env.connect(rx.out, subscriber.inp)
        client_env.start(world.platform("client"))
        holder["rx"] = rx

    client_process.spawn("setup", setup())
    world.run_for(5 * SEC)
    return subscriber, holder["rx"], tx


class TestLatencyAssumption:
    def test_sound_latency_bound_no_violations(self):
        switch_config = SwitchConfig(latency=ConstantLatency(2 * MS), ns_per_byte=0)
        stp = StpConfig(latency_bound_ns=5 * MS)
        subscriber, rx, tx = run_pulse_chain(0, switch_config, stp)
        assert rx.stp_violations == 0
        assert [value for _, value in subscriber.received] == list(range(1, 11))

    def test_latency_spikes_above_bound_are_counted(self):
        """Actual latency occasionally exceeds the assumed L."""
        switch_config = SwitchConfig(
            latency=SpikyLatency(ConstantLatency(2 * MS), 0.5, 30 * MS),
            ns_per_byte=0,
        )
        stp = StpConfig(latency_bound_ns=5 * MS)
        subscriber, rx, tx = run_pulse_chain(1, switch_config, stp)
        assert rx.stp_violations > 0
        # Nothing is silently lost: every pulse still arrives...
        assert sorted(value for _, value in subscriber.received) == list(range(1, 11))

    def test_generous_bound_absorbs_spikes(self):
        switch_config = SwitchConfig(
            latency=SpikyLatency(ConstantLatency(2 * MS), 0.5, 30 * MS),
            ns_per_byte=0,
        )
        stp = StpConfig(latency_bound_ns=40 * MS)
        subscriber, rx, tx = run_pulse_chain(1, switch_config, stp)
        assert rx.stp_violations == 0
        tags = [tag for tag, _ in subscriber.received]
        assert tags == sorted(tags)


class TestClockAssumption:
    def test_clock_skew_above_bound_is_counted(self):
        """The subscriber's clock runs ahead of the publisher's by more
        than the assumed E: arrivals land in the subscriber's past."""
        switch_config = SwitchConfig(latency=ConstantLatency(1 * MS), ns_per_byte=0)
        stp = StpConfig(latency_bound_ns=2 * MS, clock_error_ns=0)
        ahead = ClockModel(offset_ns=20 * MS)
        subscriber, rx, tx = run_pulse_chain(
            0, switch_config, stp, client_clock=ahead
        )
        assert rx.stp_violations > 0

    def test_skew_within_bound_is_fine(self):
        switch_config = SwitchConfig(latency=ConstantLatency(1 * MS), ns_per_byte=0)
        stp = StpConfig(latency_bound_ns=2 * MS, clock_error_ns=25 * MS)
        ahead = ClockModel(offset_ns=20 * MS)
        subscriber, rx, tx = run_pulse_chain(
            0, switch_config, stp, client_clock=ahead
        )
        assert rx.stp_violations == 0


class TestDeadlinePolicies:
    def _publisher_with_slow_reaction(self, drop: bool):
        world = build_world(0)
        stp = StpConfig(latency_bound_ns=5 * MS)
        config = TransactorConfig(
            deadline_ns=1 * MS, stp=stp, drop_on_deadline_miss=drop
        )
        process = AraProcess(world.platform("server"), "pub", tag_aware=True)
        env = Environment(name="pub", timeout=1 * SEC)

        class SlowPublisher(Reactor):
            def __init__(self, name, owner):
                super().__init__(name, owner)
                self.out = self.output("out")
                tick = self.timer("tick", offset=10 * MS, period=50 * MS)
                self.n = 0

                def fire(ctx):
                    if self.n < 3:
                        self.n += 1
                        ctx.set(self.out, self.n)

                # Execution cost far above the transactor deadline.
                self.reaction("fire", triggers=[tick], effects=[self.out],
                              body=fire, exec_time=10 * MS)

        publisher = SlowPublisher("publisher", env)
        skeleton = process.create_skeleton(PULSE, 1)
        skeleton.implement("noop", lambda: None)
        tx = ServerEventTransactor("tx", env, process, skeleton, "pulse", config)
        env.connect(publisher.out, tx.inp)
        skeleton.offer()
        env.start(world.platform("server"))

        client_process = AraProcess(world.platform("client"), "sub", tag_aware=True)
        client_env = Environment(name="sub", timeout=2 * SEC)
        subscriber = Subscriber("subscriber", client_env)

        def setup():
            proxy = yield from client_process.find_service(PULSE, 1)
            rx = ClientEventTransactor(
                "rx", client_env, client_process, proxy, "pulse",
                TransactorConfig(deadline_ns=1 * MS, stp=stp),
            )
            client_env.connect(rx.out, subscriber.inp)
            client_env.start(world.platform("client"))

        client_process.spawn("setup", setup())
        world.run_for(4 * SEC)
        return subscriber, tx

    def test_drop_policy_loses_messages_but_counts(self):
        subscriber, tx = self._publisher_with_slow_reaction(drop=True)
        assert tx.deadline_misses == 3
        assert subscriber.received == []

    def test_forward_late_policy_delivers_with_physical_tags(self):
        subscriber, tx = self._publisher_with_slow_reaction(drop=False)
        assert tx.deadline_misses == 3
        assert [value for _, value in subscriber.received] == [1, 2, 3]


class TestMiddlewareFailures:
    def test_request_timeout_on_lossy_network(self):
        from tests.conftest import build_ap_world, make_process
        from repro.ara.proxy import MethodCallError

        world = build_ap_world(
            0, switch_config=SwitchConfig(drop_probability=1.0)
        )
        # SD also uses the network: offer directly into the local daemon
        # is not enough, so talk to a same-host server via loopback...
        # loopback also drops; assert the timeout path instead.
        server = make_process(world, "p1", "server")
        skeleton = server.create_skeleton(PULSE, 1)
        skeleton.implement("noop", lambda: None)
        skeleton.offer()
        client = make_process(world, "p1", "client")
        outcomes = []

        def main():
            proxy = yield from client.find_service(PULSE, 1)
            future = proxy.call("noop", timeout_ns=300 * MS)
            try:
                yield from future.get()
                outcomes.append("ok")
            except MethodCallError as error:
                outcomes.append(error.return_code)

        client.spawn("main", main())
        world.run_for(3 * SEC)
        assert outcomes == [ReturnCode.E_TIMEOUT]

    def test_stop_offer_makes_service_undiscoverable(self):
        from tests.conftest import build_ap_world, make_process
        from repro.errors import ServiceNotAvailableError

        world = build_ap_world(0)
        server = make_process(world, "p1", "server")
        skeleton = server.create_skeleton(PULSE, 1)
        skeleton.implement("noop", lambda: None)
        skeleton.offer()
        world.run_for(200 * MS)
        skeleton.stop_offer()
        world.run_for(200 * MS)
        client = make_process(world, "p2", "client")
        outcomes = []

        def main():
            try:
                yield from client.find_service(PULSE, 1, timeout_ns=500 * MS)
                outcomes.append("found")
            except ServiceNotAvailableError:
                outcomes.append("gone")

        client.spawn("main", main())
        world.run_for(2 * SEC)
        assert outcomes == ["gone"]
