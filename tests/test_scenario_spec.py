"""The unified experiment API: ScenarioSpec round-trips and execution."""

import argparse
from dataclasses import replace

import pytest

from repro.apps.brake import BrakeScenario
from repro.apps.brake.det import run_det_brake_assistant
from repro.dear import StpConfig
from repro.faults import FaultPlan
from repro.harness import ScenarioSpec, SweepRunner, run_seeds
from repro.harness.config import latency_model_from_dict, latency_model_to_dict
from repro.network import (
    ConstantLatency,
    GammaLatency,
    SpikyLatency,
    UniformLatency,
)
from repro.time import MS

SMALL = BrakeScenario(n_frames=12, deterministic_camera=True)


class TestSerialization:
    def test_default_spec_round_trips(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_fully_loaded_spec_round_trips(self):
        spec = ScenarioSpec(
            variant="nondet",
            seeds=(0, 1, 2),
            scenario=BrakeScenario(n_frames=17),
            latency=SpikyLatency(
                base=GammaLatency(base_ns=200_000), spike_probability=0.01,
                spike_ns=2 * MS,
            ),
            loopback_latency=ConstantLatency(40_000),
            in_order=False,
            drop_probability=0.02,
            ns_per_byte=4,
            stp=StpConfig(latency_bound_ns=3 * MS, clock_error_ns=1 * MS),
            observe=True,
            faults=FaultPlan.camera_faults(seed=9, drop=0.1, label="rt"),
            label="everything",
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_save_load(self, tmp_path):
        spec = ScenarioSpec(seeds=(3, 4), label="disk")
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            ScenarioSpec.from_dict({"format": "something-else"})

    @pytest.mark.parametrize(
        "model",
        [
            ConstantLatency(300_000),
            UniformLatency(low_ns=100_000, high_ns=500_000),
            GammaLatency(base_ns=200_000, shape=1.5),
            SpikyLatency(
                base=UniformLatency(low_ns=1, high_ns=2),
                spike_probability=0.5,
                spike_ns=7,
            ),
        ],
    )
    def test_every_latency_model_round_trips(self, model):
        assert latency_model_from_dict(latency_model_to_dict(model)) == model

    def test_unknown_latency_model_rejected(self):
        with pytest.raises(ValueError):
            latency_model_from_dict({"model": "QuantumLatency"})

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(variant="maybe")
        with pytest.raises(ValueError):
            ScenarioSpec(seeds=())


class TestDerivedConfiguration:
    def test_default_spec_uses_stock_network(self):
        assert ScenarioSpec().switch_config() is None

    def test_any_override_builds_a_switch_config(self):
        spec = ScenarioSpec(scenario=SMALL, drop_probability=0.05)
        config = spec.switch_config()
        assert config is not None
        assert config.drop_probability == 0.05
        # Deterministic-camera runs keep their constant-latency default.
        assert isinstance(config.latency, ConstantLatency)

    def test_latency_model_plugs_in(self):
        model = UniformLatency(low_ns=100_000, high_ns=200_000)
        config = ScenarioSpec(latency=model).switch_config()
        assert config.latency == model

    def test_stp_overrides_scenario_bounds(self):
        spec = ScenarioSpec(
            scenario=SMALL,
            stp=StpConfig(latency_bound_ns=7 * MS, clock_error_ns=2 * MS),
        )
        effective = spec.effective_scenario()
        assert effective.latency_bound_ns == 7 * MS
        assert effective.clock_error_ns == 2 * MS
        assert spec.scenario.latency_bound_ns != 7 * MS


class TestFromArgs:
    def test_spec_file_wins(self, tmp_path):
        saved = ScenarioSpec(seeds=(5, 6), label="from-disk")
        path = tmp_path / "spec.json"
        saved.save(path)
        args = argparse.Namespace(spec=str(path), seeds=99, frames=1)
        assert ScenarioSpec.from_args(args) == saved

    def test_spec_file_variant_override(self, tmp_path):
        saved = ScenarioSpec(variant="det")
        path = tmp_path / "spec.json"
        saved.save(path)
        args = argparse.Namespace(spec=str(path))
        assert ScenarioSpec.from_args(args, variant="nondet").variant == "nondet"

    def test_loose_flags_fold_in(self, tmp_path):
        plan = FaultPlan.camera_faults(seed=2, drop=0.3)
        plan_path = tmp_path / "plan.json"
        plan.save(plan_path)
        args = argparse.Namespace(
            spec=None,
            seeds=3,
            frames=20,
            drop_probability=0.01,
            plan=str(plan_path),
        )
        spec = ScenarioSpec.from_args(args, variant="nondet")
        assert spec.seeds == (0, 1, 2)
        assert spec.scenario.n_frames == 20
        assert spec.drop_probability == 0.01
        assert spec.faults == plan
        assert spec.variant == "nondet"

    def test_single_seed_fallback(self):
        spec = ScenarioSpec.from_args(argparse.Namespace(seed=7))
        assert spec.seeds == (7,)


class TestExecution:
    def test_run_spec_matches_direct_run(self):
        spec = ScenarioSpec(scenario=SMALL, seeds=(0, 1), label="exec")
        sweep = SweepRunner(workers=1, use_cache=False)
        results = sweep.run_spec(spec).values()
        direct = run_det_brake_assistant(0, SMALL)
        assert results[0].commands == direct.commands
        assert results[0].trace_fingerprints == direct.trace_fingerprints

    def test_observe_attaches_metrics(self):
        spec = ScenarioSpec(scenario=SMALL, observe=True)
        result = spec.run_one(0)
        assert "metrics" in result.fault_summary
        assert isinstance(result.fault_summary["metrics"], dict)

    def test_faulty_spec_carries_its_plan(self):
        plan = FaultPlan.camera_faults(seed=7, drop=0.15)
        spec = ScenarioSpec(scenario=SMALL, faults=plan)
        result = spec.run_one(0)
        assert result.fault_summary["fault_seed"] == 7

    def test_run_seeds_shim_warns_and_delegates(self):
        spec = ScenarioSpec(scenario=SMALL)

        def experiment(seed):
            return run_det_brake_assistant(seed, SMALL)

        with pytest.warns(DeprecationWarning):
            legacy = run_seeds(experiment, [0])
        assert legacy[0].commands == spec.run_one(0).commands


class TestDriverIntegration:
    def test_figure5_accepts_a_spec(self):
        from repro.harness.figures import figure5

        spec = ScenarioSpec(
            variant="nondet", seeds=(0, 1), scenario=BrakeScenario(n_frames=12)
        )
        result = figure5(sweep=SweepRunner(workers=1, use_cache=False), spec=spec)
        assert len(result.runs) == 2

    def test_det_case_study_accepts_a_spec(self):
        from repro.harness.figures import det_case_study

        spec = ScenarioSpec(seeds=(0, 1), scenario=replace(SMALL, n_frames=10))
        result = det_case_study(
            sweep=SweepRunner(workers=1, use_cache=False), spec=spec
        )
        assert result.commands_identical
        assert result.traces_identical
