"""The unified experiment API: ScenarioSpec round-trips and execution."""

import argparse
import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.brake import BrakeScenario
from repro.apps.brake.det import run_det_brake_assistant
from repro.dear import StpConfig
from repro.faults import FaultPlan
from repro.harness import ScenarioSpec, SweepRunner
from repro.harness.config import latency_model_from_dict, latency_model_to_dict
from repro.network import (
    ConstantLatency,
    GammaLatency,
    SpikyLatency,
    UniformLatency,
)
from repro.network.topology import TopologySpec
from repro.time import MS

SMALL = BrakeScenario(n_frames=12, deterministic_camera=True)


class TestSerialization:
    def test_default_spec_round_trips(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_fully_loaded_spec_round_trips(self):
        spec = ScenarioSpec(
            variant="nondet",
            seeds=(0, 1, 2),
            scenario=BrakeScenario(n_frames=17),
            latency=SpikyLatency(
                base=GammaLatency(base_ns=200_000), spike_probability=0.01,
                spike_ns=2 * MS,
            ),
            loopback_latency=ConstantLatency(40_000),
            in_order=False,
            drop_probability=0.02,
            ns_per_byte=4,
            stp=StpConfig(latency_bound_ns=3 * MS, clock_error_ns=1 * MS),
            observe=True,
            faults=FaultPlan.camera_faults(seed=9, drop=0.1, label="rt"),
            label="everything",
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_save_load(self, tmp_path):
        spec = ScenarioSpec(seeds=(3, 4), label="disk")
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ScenarioSpec.load(path) == spec

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            ScenarioSpec.from_dict({"format": "something-else"})

    @pytest.mark.parametrize(
        "model",
        [
            ConstantLatency(300_000),
            UniformLatency(low_ns=100_000, high_ns=500_000),
            GammaLatency(base_ns=200_000, shape=1.5),
            SpikyLatency(
                base=UniformLatency(low_ns=1, high_ns=2),
                spike_probability=0.5,
                spike_ns=7,
            ),
        ],
    )
    def test_every_latency_model_round_trips(self, model):
        assert latency_model_from_dict(latency_model_to_dict(model)) == model

    def test_unknown_latency_model_rejected(self):
        with pytest.raises(ValueError):
            latency_model_from_dict({"model": "QuantumLatency"})

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(variant="maybe")
        with pytest.raises(ValueError):
            ScenarioSpec(seeds=())


class TestDerivedConfiguration:
    def test_default_spec_uses_stock_network(self):
        assert ScenarioSpec().switch_config() is None

    def test_any_override_builds_a_switch_config(self):
        spec = ScenarioSpec(scenario=SMALL, drop_probability=0.05)
        config = spec.switch_config()
        assert config is not None
        assert config.drop_probability == 0.05
        # Deterministic-camera runs keep their constant-latency default.
        assert isinstance(config.latency, ConstantLatency)

    def test_latency_model_plugs_in(self):
        model = UniformLatency(low_ns=100_000, high_ns=200_000)
        config = ScenarioSpec(latency=model).switch_config()
        assert config.latency == model

    def test_stp_overrides_scenario_bounds(self):
        spec = ScenarioSpec(
            scenario=SMALL,
            stp=StpConfig(latency_bound_ns=7 * MS, clock_error_ns=2 * MS),
        )
        effective = spec.effective_scenario()
        assert effective.latency_bound_ns == 7 * MS
        assert effective.clock_error_ns == 2 * MS
        assert spec.scenario.latency_bound_ns != 7 * MS


class TestFromArgs:
    def test_spec_file_wins(self, tmp_path):
        saved = ScenarioSpec(seeds=(5, 6), label="from-disk")
        path = tmp_path / "spec.json"
        saved.save(path)
        args = argparse.Namespace(spec=str(path), seeds=99, frames=1)
        assert ScenarioSpec.from_args(args) == saved

    def test_spec_file_variant_override(self, tmp_path):
        saved = ScenarioSpec(variant="det")
        path = tmp_path / "spec.json"
        saved.save(path)
        args = argparse.Namespace(spec=str(path))
        assert ScenarioSpec.from_args(args, variant="nondet").variant == "nondet"

    def test_loose_flags_fold_in(self, tmp_path):
        plan = FaultPlan.camera_faults(seed=2, drop=0.3)
        plan_path = tmp_path / "plan.json"
        plan.save(plan_path)
        args = argparse.Namespace(
            spec=None,
            seeds=3,
            frames=20,
            drop_probability=0.01,
            plan=str(plan_path),
        )
        spec = ScenarioSpec.from_args(args, variant="nondet")
        assert spec.seeds == (0, 1, 2)
        assert spec.scenario.n_frames == 20
        assert spec.drop_probability == 0.01
        assert spec.faults == plan
        assert spec.variant == "nondet"

    def test_single_seed_fallback(self):
        spec = ScenarioSpec.from_args(argparse.Namespace(seed=7))
        assert spec.seeds == (7,)


class TestExecution:
    def test_run_spec_matches_direct_run(self):
        spec = ScenarioSpec(scenario=SMALL, seeds=(0, 1), label="exec")
        sweep = SweepRunner(workers=1, use_cache=False)
        results = sweep.run_spec(spec).values()
        direct = run_det_brake_assistant(0, SMALL)
        assert results[0].commands == direct.commands
        assert results[0].trace_fingerprints == direct.trace_fingerprints

    def test_observe_attaches_metrics(self):
        spec = ScenarioSpec(scenario=SMALL, observe=True)
        result = spec.run_one(0)
        assert "metrics" in result.fault_summary
        assert isinstance(result.fault_summary["metrics"], dict)

    def test_faulty_spec_carries_its_plan(self):
        plan = FaultPlan.camera_faults(seed=7, drop=0.15)
        spec = ScenarioSpec(scenario=SMALL, faults=plan)
        result = spec.run_one(0)
        assert result.fault_summary["fault_seed"] == 7

    def test_run_seeds_shim_is_gone(self):
        with pytest.raises(ImportError):
            from repro.harness import run_seeds  # noqa: F401


class TestDriverIntegration:
    def test_figure5_accepts_a_spec(self):
        from repro.harness.figures import figure5

        spec = ScenarioSpec(
            variant="nondet", seeds=(0, 1), scenario=BrakeScenario(n_frames=12)
        )
        result = figure5(sweep=SweepRunner(workers=1, use_cache=False), spec=spec)
        assert len(result.runs) == 2

    def test_det_case_study_accepts_a_spec(self):
        from repro.harness.figures import det_case_study

        spec = ScenarioSpec(seeds=(0, 1), scenario=replace(SMALL, n_frames=10))
        result = det_case_study(
            sweep=SweepRunner(workers=1, use_cache=False), spec=spec
        )
        assert result.commands_identical
        assert result.traces_identical


class TestNetworkSpec:
    def test_default_round_trips(self):
        from repro.harness import NetworkSpec

        assert NetworkSpec.from_dict(NetworkSpec().to_dict()) == NetworkSpec()

    def test_loaded_round_trips(self):
        from repro.harness import NetworkSpec

        network = NetworkSpec(
            latency=UniformLatency(1 * MS, 3 * MS),
            loopback_latency=ConstantLatency(20_000),
            in_order=False,
            drop_probability=0.05,
            ns_per_byte=2,
        )
        assert NetworkSpec.from_dict(network.to_dict()) == network

    def test_flattened_knobs_fold_into_network(self):
        with pytest.warns(DeprecationWarning):
            spec = _fresh_knob_spec(drop_probability=0.25, ns_per_byte=2)
        assert spec.network.drop_probability == 0.25
        assert spec.network.ns_per_byte == 2
        # Read-compat properties mirror the nested values.
        assert spec.drop_probability == 0.25
        assert spec.ns_per_byte == 2

    def test_flattened_knobs_warn_once_per_process(self):
        import warnings

        _fresh_knob_spec(in_order=False)  # first use warns (asserted above)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ScenarioSpec(in_order=False)  # second use must stay silent

    def test_flattened_knobs_conflict_with_explicit_network(self):
        from repro.harness import NetworkSpec

        with pytest.raises(TypeError):
            _fresh_knob_spec(in_order=False, network=NetworkSpec())

    def test_shimmed_spec_round_trips(self):
        with pytest.warns(DeprecationWarning):
            spec = _fresh_knob_spec(latency=ConstantLatency(2 * MS))
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def _fresh_knob_spec(**kwargs):
    """Build a spec via deprecated flattened knobs with warn-state reset."""
    from repro.harness import config

    config._WARNED_KNOBS.clear()
    return ScenarioSpec(**kwargs)


class TestV1Compatibility:
    FIXTURE = Path(__file__).parent / "data" / "scenario_spec_v1.json"

    def test_fixture_loads(self):
        spec = ScenarioSpec.load(self.FIXTURE)
        assert spec.app == "brake"
        assert spec.topology is None
        assert spec.variant == "nondet"
        assert spec.scenario.n_frames == 40

    def test_fixture_re_emits_byte_identical_v1(self):
        """A v1 file must survive load -> to_dict unchanged: the sweep
        cache, result store and submit protocol all hash this dict."""
        stored = json.loads(self.FIXTURE.read_text())
        spec = ScenarioSpec.from_dict(stored)
        assert spec.to_dict() == stored

    def test_fixture_sweep_cache_key_is_stable(self):
        """Same name + params material => same cache key as pre-v2."""
        spec = ScenarioSpec.load(self.FIXTURE)
        assert spec.sweep_name() == "v1-fixture"  # explicit label wins
        assert replace(spec, label="").sweep_name() == "spec-nondet"
        material = json.dumps(
            {"spec": spec.to_dict()}, sort_keys=True, default=repr
        )
        assert material == json.dumps(
            {"spec": json.loads(self.FIXTURE.read_text())},
            sort_keys=True,
            default=repr,
        )

    def test_brake_defaults_still_emit_v1(self):
        assert ScenarioSpec().to_dict()["format"] == "scenario-spec/v1"

    def test_topology_forces_v2(self):
        spec = ScenarioSpec(topology=TopologySpec.trivial(("camera", "fusion")))
        assert spec.to_dict()["format"] == "scenario-spec/v2"
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def _topologies():
    constant = st.integers(min_value=0, max_value=10 * MS).map(ConstantLatency)
    node_names = st.lists(
        st.sampled_from(["ecu-a", "ecu-b", "ecu-c", "ecu-d", "ecu-e"]),
        min_size=1,
        max_size=5,
        unique=True,
    )
    stars = st.builds(
        TopologySpec.star,
        nodes=node_names.map(tuple),
        latency=st.none() | constant,
        ns_per_byte=st.none() | st.integers(min_value=0, max_value=64),
    )
    chains = st.builds(
        TopologySpec.chain,
        groups=st.just((("ecu-a", "ecu-b"), ("ecu-c",), ("ecu-d",))),
        trunk_latency=st.none() | constant,
        trunk_ns_per_byte=st.none() | st.integers(min_value=0, max_value=64),
    )
    return stars | chains


def _networks():
    from repro.harness import NetworkSpec

    models = st.one_of(
        st.none(),
        st.integers(min_value=0, max_value=10 * MS).map(ConstantLatency),
        st.tuples(
            st.integers(min_value=0, max_value=1 * MS),
            st.integers(min_value=1 * MS, max_value=10 * MS),
        ).map(lambda pair: UniformLatency(*pair)),
    )
    return st.builds(
        NetworkSpec,
        latency=models,
        loopback_latency=models,
        in_order=st.booleans(),
        drop_probability=st.floats(min_value=0.0, max_value=1.0),
        ns_per_byte=st.integers(min_value=0, max_value=64),
    )


def _stps():
    return st.none() | st.builds(
        StpConfig,
        latency_bound_ns=st.integers(min_value=0, max_value=100 * MS),
        clock_error_ns=st.integers(min_value=0, max_value=10 * MS),
    )


def _fault_plans():
    return st.none() | st.builds(
        lambda seed, drop: FaultPlan.camera_faults(seed=seed, drop=drop),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.0, max_value=1.0),
    )


class TestV2PropertyRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        topology=_topologies(),
        network=_networks(),
        stp=_stps(),
        faults=_fault_plans(),
        variant=st.sampled_from(["det", "nondet"]),
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=1,
            max_size=4,
        ).map(tuple),
        observe=st.booleans(),
        label=st.sampled_from(["", "prop", "x y z"]),
    )
    def test_v2_json_round_trip(
        self, topology, network, stp, faults, variant, seeds, observe, label
    ):
        """scenario-spec/v2: to_json -> from_json is the identity over
        topology x network x stp x faults x bookkeeping fields."""
        spec = ScenarioSpec(
            variant=variant,
            seeds=seeds,
            network=network,
            topology=topology,
            stp=stp,
            faults=faults,
            observe=observe,
            label=label,
        )
        data = spec.to_dict()
        assert data["format"] == "scenario-spec/v2"
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_dict() == data
