"""Tests for multiports (port banks)."""

import pytest

from repro.errors import AssemblyError
from repro.reactors import Environment, Reactor
from repro.time import MS


class Scatter(Reactor):
    """Writes i*10 to channel i on startup."""

    def __init__(self, name, owner, width):
        super().__init__(name, owner)
        self.out = self.output_multiport("out", width)
        start = self.timer("start", offset=0)

        def emit(ctx):
            for index, channel in enumerate(self.out):
                ctx.set(channel, index * 10)

        self.reaction("emit", triggers=[start], effects=[self.out], body=emit)


class Gather(Reactor):
    """Collects all channels whenever any fires."""

    def __init__(self, name, owner, width):
        super().__init__(name, owner)
        self.inp = self.input_multiport("inp", width)
        self.observations = []
        self.reaction(
            "collect",
            triggers=[self.inp],
            body=lambda ctx: self.observations.append(
                (self.inp.present_channels(), self.inp.values())
            ),
        )


class TestMultiports:
    def test_pairwise_connection_and_gather(self):
        env = Environment(timeout=0)
        scatter = Scatter("scatter", env, 3)
        gather = Gather("gather", env, 3)
        env.connect_multiports(scatter.out, gather.inp)
        env.execute()
        assert gather.observations == [([0, 1, 2], [0, 10, 20])]

    def test_width_mismatch_rejected(self):
        env = Environment()
        scatter = Scatter("scatter", env, 3)
        gather = Gather("gather", env, 2)
        with pytest.raises(AssemblyError):
            env.connect_multiports(scatter.out, gather.inp)

    def test_partial_presence(self):
        env = Environment(timeout=0)

        class Sparse(Reactor):
            def __init__(self, name, owner):
                super().__init__(name, owner)
                self.out = self.output_multiport("out", 3)
                start = self.timer("start", offset=0)
                self.reaction(
                    "emit", triggers=[start], effects=[self.out],
                    body=lambda ctx: ctx.set(self.out[1], "only-middle"),
                )

        sparse = Sparse("sparse", env)
        gather = Gather("gather", env, 3)
        env.connect_multiports(sparse.out, gather.inp)
        env.execute()
        channels, values = gather.observations[0]
        assert channels == [1]
        assert values == [None, "only-middle", None]

    def test_fan_in_from_separate_reactors(self):
        env = Environment(timeout=0)

        class One(Reactor):
            def __init__(self, name, owner, value):
                super().__init__(name, owner)
                self.out = self.output("out")
                start = self.timer("start", offset=0)
                self.reaction("emit", triggers=[start], effects=[self.out],
                              body=lambda ctx: ctx.set(self.out, value))

        sources = [One(f"s{i}", env, i + 100) for i in range(3)]
        gather = Gather("gather", env, 3)
        for index, source in enumerate(sources):
            env.connect(source.out, gather.inp[index])
        env.execute()
        assert gather.observations == [([0, 1, 2], [100, 101, 102])]

    def test_channel_fqns(self):
        env = Environment()
        scatter = Scatter("scatter", env, 2)
        assert scatter.out[0].fqn == "scatter.out[0]"
        assert scatter.out.fqn == "scatter.out"
        assert scatter.out.width == 2

    def test_invalid_width(self):
        env = Environment()
        reactor = Reactor("r", env)
        with pytest.raises(ValueError):
            reactor.input_multiport("bad", 0)

    def test_delayed_multiport_connection(self):
        env = Environment(timeout=10 * MS)
        scatter = Scatter("scatter", env, 2)
        gather = Gather("gather", env, 2)
        env.connect_multiports(scatter.out, gather.inp, after=4 * MS)
        env.execute()
        assert gather.observations == [([0, 1], [0, 10])]
