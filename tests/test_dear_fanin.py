"""Fan-in determinism: DEAR's answer to nondeterminism source 2.

Source 2 is "the order in which SWCs process incoming messages is
undefined" — two peers talking to the same SWC may be served in either
order.  Under DEAR, messages carry tags and the safe-to-process rule
guarantees the consumer handles them in *tag* order, however the
network interleaves them.  This test runs two independent publishers on
different ECUs into one consumer and checks the merged order is the tag
order, identically for every seed.
"""

from repro.ara import AraProcess, Event, Method, ServiceInterface
from repro.dear import (
    ClientEventTransactor,
    ServerEventTransactor,
    StpConfig,
    TransactorConfig,
)
from repro.network import NetworkInterface, Switch, SwitchConfig, UniformLatency
from repro.reactors import Environment, Reactor
from repro.sim import World
from repro.sim.platform import CALM
from repro.someip import SdDaemon
from repro.someip.serialization import INT32, STRING
from repro.time import MS, SEC

CHANNEL_A = ServiceInterface(
    "ChannelA", 0x7001,
    methods=[Method("noop", 1)],
    events=[Event("data", 0x8001, data=[("label", STRING), ("n", INT32)])],
)
CHANNEL_B = ServiceInterface(
    "ChannelB", 0x7002,
    methods=[Method("noop", 1)],
    events=[Event("data", 0x8001, data=[("label", STRING), ("n", INT32)])],
)

CONFIG = TransactorConfig(deadline_ns=5 * MS, stp=StpConfig(latency_bound_ns=10 * MS))


class _Publisher(Reactor):
    """Publishes (label, n) on a timer with a per-publisher phase."""

    def __init__(self, name, owner, label, offset, period, count):
        super().__init__(name, owner)
        self.out = self.output("out")
        tick = self.timer("tick", offset=offset, period=period)
        self.n = 0

        def fire(ctx):
            if self.n < count:
                self.n += 1
                ctx.set(self.out, {"label": label, "n": self.n})

        self.reaction("fire", triggers=[tick], effects=[self.out], body=fire)


class _Merger(Reactor):
    """Consumes both channels; records the merged order."""

    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.a_in = self.input("a_in")
        self.b_in = self.input("b_in")
        self.merged = []

        def on_any(ctx):
            for port in (self.a_in, self.b_in):
                if ctx.is_present(port):
                    data = ctx.get(port)
                    self.merged.append((ctx.tag, data["label"], data["n"]))

        self.reaction("merge", triggers=[self.a_in, self.b_in], body=on_any)


def run_fanin(seed: int):
    world = World(seed)
    # Wild latency spread: arrival interleaving varies strongly by seed.
    switch = Switch(
        world.sim, world.rng.stream("net"),
        SwitchConfig(latency=UniformLatency(200_000, 8 * MS)),
    )
    world.attach_network(switch)
    for host in ("ecu-a", "ecu-b", "ecu-c"):
        platform = world.add_platform(host, CALM)
        SdDaemon(platform, NetworkInterface(platform, switch))

    def make_publisher(host, interface, label, offset):
        process = AraProcess(world.platform(host), f"pub-{label}", tag_aware=True)
        env = Environment(name=f"pub-{label}", timeout=3 * SEC, trace_origin=0)
        publisher = _Publisher(
            "publisher", env, label, offset=400 * MS + offset,
            period=20 * MS, count=8,
        )
        skeleton = process.create_skeleton(interface, 1)
        skeleton.implement("noop", lambda: None)
        tx = ServerEventTransactor("tx", env, process, skeleton, "data", CONFIG)
        env.connect(publisher.out, tx.inp)
        skeleton.offer()
        env.start(world.platform(host))

    # Offset 7 ms: A's and B's tags interleave rather than coincide.
    make_publisher("ecu-a", CHANNEL_A, "A", 0)
    make_publisher("ecu-b", CHANNEL_B, "B", 7 * MS)

    consumer_process = AraProcess(world.platform("ecu-c"), "merger", tag_aware=True)
    consumer_env = Environment(name="merger", timeout=4 * SEC, trace_origin=0)
    merger = _Merger("merger", consumer_env)

    def setup():
        proxy_a = yield from consumer_process.find_service(CHANNEL_A, 1)
        proxy_b = yield from consumer_process.find_service(CHANNEL_B, 1)
        rx_a = ClientEventTransactor("rx_a", consumer_env, consumer_process,
                                     proxy_a, "data", CONFIG)
        rx_b = ClientEventTransactor("rx_b", consumer_env, consumer_process,
                                     proxy_b, "data", CONFIG)
        consumer_env.connect(rx_a.out, merger.a_in)
        consumer_env.connect(rx_b.out, merger.b_in)
        consumer_env.start(world.platform("ecu-c"))

    consumer_process.spawn("setup", setup())
    world.run_for(6 * SEC)
    return merger, consumer_env


class TestFanInDeterminism:
    def test_all_events_merged_in_tag_order(self):
        merger, _env = run_fanin(0)
        assert len(merger.merged) == 16
        tags = [tag for tag, _label, _n in merger.merged]
        assert tags == sorted(tags)

    def test_interleaving_alternates_by_tag_phase(self):
        """With a 7 ms phase offset on a 20 ms period, A and B strictly
        alternate in tag order."""
        merger, _env = run_fanin(0)
        labels = [label for _tag, label, _n in merger.merged]
        assert labels == ["A", "B"] * 8

    def test_merge_order_identical_across_seeds(self):
        """The punchline: wildly different network interleavings (the
        latency spread spans 0.2-8 ms), identical logical merge."""
        merges = set()
        traces = set()
        for seed in range(4):
            merger, env = run_fanin(seed)
            merges.add(tuple(merger.merged))
            traces.add(env.trace.fingerprint())
        assert len(merges) == 1
        assert len(traces) == 1
