"""Kernel fingerprint regression: speed must never change a schedule.

The goldens in ``tests/data/kernel_fingerprints.json`` were captured
*before* the sim-kernel throughput overhaul (bucketed dispatch, handle
pooling, batched reaction execution) and pin:

* per-environment logical trace fingerprints of the DEAR brake
  assistant (``Trace.fingerprint()`` — reactions, port values and
  deadline-miss lag), and
* an outcome digest covering commands, latencies, error counters and
  timing violations — which also works for the nondeterministic
  variant, whose behaviour depends on every RNG draw the platform
  makes.

Cases span deterministic seeds, nondeterministic seeds, a replayed PCT
exploration schedule and an active fault plan, so a kernel change that
reorders events, perturbs an RNG stream or shifts physical time fails
here rather than silently altering results.

To refresh after an *intentional* semantic change: regenerate with
``PYTHONPATH=src python benchmarks/capture_kernel_goldens.py`` and
explain the change in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.apps.brake.det import run_det_brake_assistant
from repro.apps.brake.nondet import run_nondet_brake_assistant
from repro.explore import IN_BUDGET_PREEMPT_NS, PctStrategy, calibration_scenario
from repro.faults import FaultPlan
from repro.sim.rng import stream_hooks

GOLDEN_PATH = Path(__file__).parent / "data" / "kernel_fingerprints.json"


def _load_goldens() -> dict:
    with GOLDEN_PATH.open() as fh:
        data = json.load(fh)
    assert data["format"] == "kernel-fingerprints/v2"
    return data["cases"]


def _run_case(name: str):
    if name.startswith("det-seed"):
        seed = int(name.removeprefix("det-seed"))
        scenario = calibration_scenario(20, deterministic_camera=True)
        return run_det_brake_assistant(seed, scenario)
    if name.startswith("nondet-seed"):
        seed = int(name.removeprefix("nondet-seed"))
        scenario = calibration_scenario(20)
        return run_nondet_brake_assistant(seed, scenario)
    if name == "pct-replay":
        scenario = calibration_scenario(15, deterministic_camera=True)
        strategy = PctStrategy(depth=4, preempt_ns=IN_BUDGET_PREEMPT_NS, seed=5)
        schedule = strategy.schedule_for(1, base_seed=0, horizon=400)
        assert schedule.preemptions, "PCT schedule must actually preempt"
        with stream_hooks(schedule.controller(exclude=("camera",))):
            return run_det_brake_assistant(0, scenario)
    if name == "fault-plan":
        scenario = calibration_scenario(20, deterministic_camera=True)
        plan = FaultPlan.camera_faults(seed=1, drop=0.1, label="kernel-golden")
        return run_det_brake_assistant(0, scenario, fault_plan=plan)
    raise AssertionError(f"unknown golden case {name!r}")


CASES = sorted(_load_goldens())


class TestKernelFingerprints:
    """Every golden case reproduces bit-exactly on the current kernel."""

    @pytest.fixture(scope="class")
    def goldens(self) -> dict:
        return _load_goldens()

    @pytest.mark.parametrize("name", CASES)
    def test_case_matches_golden(self, goldens, name):
        expected = goldens[name]
        result = _run_case(name)
        assert dict(result.trace_fingerprints) == expected["traces"], (
            f"{name}: logical trace fingerprints diverged from the "
            f"pre-overhaul kernel"
        )
        assert result.outcome_digest() == expected["outcome"], (
            f"{name}: outcome digest (commands/latencies/errors) diverged "
            f"from the pre-overhaul kernel"
        )

    def test_det_traces_are_seed_invariant(self, goldens):
        """The DEAR pinning property: det traces identical across seeds."""
        det = [goldens[name]["traces"] for name in CASES if name.startswith("det-")]
        assert len(det) >= 2
        assert all(traces == det[0] for traces in det)

    def test_nondet_outcomes_differ_across_seeds(self, goldens):
        """Sanity: the nondet digest is actually schedule-sensitive."""
        nondet = [
            goldens[name]["outcome"] for name in CASES if name.startswith("nondet-")
        ]
        assert len(nondet) == len(set(nondet))

    def test_trivial_topology_matches_goldens(self, goldens):
        """An explicit single-switch TopologySpec is the legacy network,
        draw for draw: the det golden reproduces byte-identically."""
        from repro.network import ConstantLatency, SwitchConfig
        from repro.network.topology import TopologySpec
        from repro.time import US

        scenario = calibration_scenario(20, deterministic_camera=True)
        config = SwitchConfig(
            latency=ConstantLatency(300 * US),
            loopback_latency=ConstantLatency(50 * US),
            topology=TopologySpec.trivial(("vision-ecu", "fusion-ecu")),
        )
        result = run_det_brake_assistant(0, scenario, switch_config=config)
        expected = goldens["det-seed0"]
        assert dict(result.trace_fingerprints) == expected["traces"]
        assert result.outcome_digest() == expected["outcome"]
