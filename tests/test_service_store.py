"""Tests for the shared content-addressed result store."""

import json
import multiprocessing

from repro.apps.brake.scenario import BrakeScenario
from repro.harness import ScenarioSpec
from repro.service import ResultStore, spec_record_key
from repro.faults import FaultPlan


def _spec(**kwargs):
    defaults = dict(
        variant="det",
        seeds=(0, 1, 2),
        scenario=BrakeScenario(n_frames=40),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestContentAddressing:
    def test_key_ignores_seed_list_and_label(self):
        """Chunking/naming a campaign differently must share results."""
        a = _spec(seeds=(0, 1, 2, 3), label="campaign-a")
        b = _spec(seeds=(2,), label="renamed")
        assert spec_record_key(a, 2) == spec_record_key(b, 2)

    def test_key_depends_on_seed(self):
        spec = _spec()
        assert spec_record_key(spec, 0) != spec_record_key(spec, 1)

    def test_key_depends_on_scientific_content(self):
        base = _spec()
        assert spec_record_key(base, 0) != spec_record_key(
            _spec(variant="nondet"), 0
        )
        assert spec_record_key(base, 0) != spec_record_key(
            _spec(scenario=BrakeScenario(n_frames=41)), 0
        )
        faulted = _spec(faults=FaultPlan.camera_faults(seed=1, drop=0.1))
        assert spec_record_key(base, 0) != spec_record_key(faulted, 0)

    def test_accepts_spec_dict(self):
        spec = _spec()
        assert spec_record_key(spec.to_dict(), 0) == spec_record_key(spec, 0)


class TestRoundTrip:
    def test_json_and_pickle_values(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a" * 32, 0, {"plain": [1, 2, 3]})
        store.put("b" * 32, 1, {1: "int-keyed dicts need pickling"})
        assert store.fetch(store.get("a" * 32)) == {"plain": [1, 2, 3]}
        assert store.fetch(store.get("b" * 32)) == {
            1: "int-keyed dicts need pickling"
        }
        assert store.get("c" * 32) is None

    def test_later_records_shadow_earlier(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a" * 32, 0, "stale")
        store.put("a" * 32, 0, "fresh")
        assert store.fetch(store.get("a" * 32)) == "fresh"

    def test_get_many_spans_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [f"{i:02x}" + "0" * 30 for i in range(8)]
        for index, key in enumerate(keys):
            store.put(key, index, index * 10)
        found = store.get_many(keys + ["ff" + "1" * 30])
        assert sorted(found) == sorted(keys)
        assert store.fetch(found[keys[3]]) == 30


def _hammer(args):
    directory, writer, count = args
    store = ResultStore(directory)
    for index in range(count):
        # same shard on purpose: all writers contend for one file.
        store.put(f"aa{writer:02d}{index:04d}" + "0" * 24, index, [writer, index])
    return writer


class TestConcurrentWriters:
    def test_parallel_process_appends_never_interleave(self, tmp_path):
        """4 processes × 25 appends into one shard: every record intact."""
        writers = 4
        per_writer = 25
        with multiprocessing.Pool(writers) as pool:
            pool.map(
                _hammer,
                [(str(tmp_path), writer, per_writer) for writer in range(writers)],
            )
        store = ResultStore(tmp_path)
        stats = store.stats()
        assert stats["records"] == writers * per_writer
        assert stats["malformed_lines"] == 0
        for writer in range(writers):
            for index in range(per_writer):
                key = f"aa{writer:02d}{index:04d}" + "0" * 24
                assert store.fetch(store.get(key)) == [writer, index]


class TestCrashTolerance:
    def test_torn_tail_is_skipped_and_reported(self, tmp_path):
        store = ResultStore(tmp_path)
        record = store.put("aa" + "0" * 30, 0, "survivor")
        shard = tmp_path / "aa.jsonl"
        with shard.open("ab") as handle:  # a writer crashed mid-append
            handle.write(b'{"key": "aa' + b"1" * 10)
        assert store.fetch(store.get("aa" + "0" * 30)) == "survivor"
        assert store.malformed == {"aa.jsonl": 1}

    def test_append_after_crash_repairs_the_tail(self, tmp_path):
        """Records appended after a torn line must stay parseable."""
        store = ResultStore(tmp_path)
        store.put("aa" + "0" * 30, 0, "before")
        shard = tmp_path / "aa.jsonl"
        with shard.open("ab") as handle:
            handle.write(b'{"key": "aa torn...')
        store.put("aa" + "1" * 30, 1, "after")
        assert store.fetch(store.get("aa" + "0" * 30)) == "before"
        assert store.fetch(store.get("aa" + "1" * 30)) == "after"
        # the torn line is terminated, not merged into the next record
        lines = shard.read_bytes().splitlines()
        assert len(lines) == 3
        assert store.malformed == {"aa.jsonl": 1}

    def test_compact_drops_shadowed_and_torn(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("aa" + "0" * 30, 0, "stale")
        store.put("aa" + "0" * 30, 0, "fresh")
        with (tmp_path / "aa.jsonl").open("ab") as handle:
            handle.write(b"torn line no newline")
        summary = store.compact()
        assert summary == {"records": 1, "dropped": 2}
        assert store.fetch(store.get("aa" + "0" * 30)) == "fresh"
        content = (tmp_path / "aa.jsonl").read_text()
        assert len(content.splitlines()) == 1
        assert json.loads(content)["payload"] is not None
        assert store.stats()["malformed_lines"] == 0
