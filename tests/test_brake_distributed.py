"""Distributed brake-assistant deployment (the E > 0 case).

Extension of Section IV.B: the paper deploys all processing SWCs on one
platform ("there is no clock synchronization error to account for").
Here Computer Vision and EBA run on a second processing ECU with a
skewed clock, exercising the full ``t + D + L + E`` machinery at system
level.
"""

import pytest

from repro.apps.brake import (
    BrakeScenario,
    run_det_brake_assistant,
)
from repro.apps.brake.logic import oracle_commands
from repro.apps.brake.vision import SceneGenerator
from repro.time import MS

FRAMES = 150


def scenario(skew_ns, error_ns):
    return BrakeScenario(
        n_frames=FRAMES,
        distributed=True,
        processing_clock_skew_ns=skew_ns,
        clock_error_ns=error_ns,
    )


@pytest.fixture(scope="module")
def oracle():
    base = BrakeScenario(n_frames=FRAMES)
    generator = SceneGenerator(base.period_ns, base.variant)
    return oracle_commands(generator, FRAMES)


class TestCoveredSkew:
    def test_perfect_execution_with_covering_error_bound(self, oracle):
        result = run_det_brake_assistant(0, scenario(2 * MS, 3 * MS))
        assert result.errors.total() == 0
        assert result.stp_violations == 0
        assert result.deadline_misses == 0
        assert result.compare_with_oracle(oracle).is_perfect

    def test_commands_match_single_platform_deployment(self, oracle):
        """Same logical outputs whether the pipeline is co-located or
        distributed — deployment transparency."""
        single = run_det_brake_assistant(0, BrakeScenario(n_frames=FRAMES))
        distributed = run_det_brake_assistant(0, scenario(2 * MS, 3 * MS))
        assert single.commands == distributed.commands

    def test_small_skew_absorbed_by_stp_slack_even_with_zero_e(self):
        """A structural finding: the pipeline's safe-to-process wait
        (each stage processes at tag >= send + D + L) tolerates skew up
        to roughly D + L minus the stage's execution time, even with an
        assumed E of zero."""
        result = run_det_brake_assistant(0, scenario(5 * MS, 0))
        assert result.stp_violations == 0
        assert result.errors.total() == 0


class TestUncoveredSkew:
    def test_large_skew_with_zero_e_is_observable(self):
        result = run_det_brake_assistant(0, scenario(15 * MS, 0))
        assert result.stp_violations > 0
        assert result.errors.mismatch_computer_vision > 0
        assert len(result.commands) < FRAMES

    def test_no_silent_misbehaviour(self, oracle):
        """Every wrong/missing output is matched by counted violations —
        errors are observable, never silent."""
        result = run_det_brake_assistant(0, scenario(15 * MS, 0))
        comparison = result.compare_with_oracle(oracle)
        degraded = (
            comparison.missed_brakes
            + comparison.phantom_brakes
            + comparison.absent_outputs
        )
        assert degraded > 0
        assert result.stp_violations + result.errors.total() > 0

    def test_raising_e_restores_perfection(self, oracle):
        result = run_det_brake_assistant(0, scenario(15 * MS, 20 * MS))
        assert result.stp_violations == 0
        assert result.errors.total() == 0
        assert result.compare_with_oracle(oracle).is_perfect
