"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.runs == 20
        assert args.frames == 2_000

    def test_overrides(self):
        args = build_parser().parse_args(["fig5", "--runs", "3", "--frames", "100"])
        assert args.runs == 3
        assert args.frames == 100


class TestExecution:
    def test_fig3_prints_sequence(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "tc + Dc + L + E" in out

    def test_ablation_small(self, capsys):
        assert main(["ablation", "--seeds", "4"]) == 0
        out = capsys.readouterr().out
        assert "sources of nondeterminism" in out

    def test_det_small(self, capsys):
        assert main(["det", "--seeds", "1", "--frames", "60"]) == 0
        out = capsys.readouterr().out
        assert "deterministic brake assistant" in out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        assert "EXT-SCALE" in capsys.readouterr().out


class TestExplore:
    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.strategy == "pct"
        assert args.budget == 40
        assert not args.shrink

    def test_pct_finds_shrinks_records_and_replays(self, capsys, tmp_path):
        trace_file = str(tmp_path / "trace.json")
        artifact_file = str(tmp_path / "schedule.json")
        assert main([
            "explore", "--budget", "10", "--shrink",
            "--record", trace_file, "--schedule-out", artifact_file,
            "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "failing schedule found" in out
        assert "the failure needs exactly" in out

        artifact = json.loads((tmp_path / "schedule.json").read_text())
        assert artifact["found"] is True
        assert artifact["strategy"] == "pct"
        assert artifact["schedule"]["preemptions"]
        assert sum(artifact["errors"].values()) > 0

        # The recorded trace replays: exit 0 means the error counters
        # reproduced bit-exactly from the decision trace alone.
        assert main(["explore", "--replay", trace_file, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "errors reproduced" in out

    def test_exhausted_budget_exits_nonzero(self, capsys):
        # depth=0 yields baseline-only schedules: no failure to find.
        assert main([
            "explore", "--budget", "2", "--depth", "0",
            "--frames", "10", "--no-cache",
        ]) == 1
        assert "no failure" in capsys.readouterr().out
