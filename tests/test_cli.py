"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.runs == 20
        assert args.frames == 2_000

    def test_overrides(self):
        args = build_parser().parse_args(["fig5", "--runs", "3", "--frames", "100"])
        assert args.runs == 3
        assert args.frames == 100


class TestExecution:
    def test_fig3_prints_sequence(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "tc + Dc + L + E" in out

    def test_ablation_small(self, capsys):
        assert main(["ablation", "--seeds", "4"]) == 0
        out = capsys.readouterr().out
        assert "sources of nondeterminism" in out

    def test_det_small(self, capsys):
        assert main(["det", "--seeds", "1", "--frames", "60"]) == 0
        out = capsys.readouterr().out
        assert "deterministic brake assistant" in out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        assert "EXT-SCALE" in capsys.readouterr().out
