"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.runs == 20
        assert args.frames == 2_000

    def test_overrides(self):
        args = build_parser().parse_args(["fig5", "--runs", "3", "--frames", "100"])
        assert args.runs == 3
        assert args.frames == 100


class TestExecution:
    def test_fig3_prints_sequence(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "tc + Dc + L + E" in out

    def test_ablation_small(self, capsys):
        assert main(["ablation", "--seeds", "4"]) == 0
        out = capsys.readouterr().out
        assert "sources of nondeterminism" in out

    def test_det_small(self, capsys):
        assert main(["det", "--seeds", "1", "--frames", "60"]) == 0
        out = capsys.readouterr().out
        assert "deterministic brake assistant" in out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        assert "EXT-SCALE" in capsys.readouterr().out


class TestExplore:
    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.strategy == "pct"
        assert args.budget == 40
        assert not args.shrink

    def test_pct_finds_shrinks_records_and_replays(self, capsys, tmp_path):
        trace_file = str(tmp_path / "trace.json")
        artifact_file = str(tmp_path / "schedule.json")
        assert main([
            "explore", "--budget", "10", "--shrink",
            "--record", trace_file, "--schedule-out", artifact_file,
            "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "failing schedule found" in out
        assert "the failure needs exactly" in out

        artifact = json.loads((tmp_path / "schedule.json").read_text())
        assert artifact["found"] is True
        assert artifact["strategy"] == "pct"
        assert artifact["schedule"]["preemptions"]
        assert sum(artifact["errors"].values()) > 0

        # The recorded trace replays: exit 0 means the error counters
        # reproduced bit-exactly from the decision trace alone.
        assert main(["explore", "--replay", trace_file, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "errors reproduced" in out

    def test_exhausted_budget_exits_nonzero(self, capsys):
        # depth=0 yields baseline-only schedules: no failure to find.
        assert main([
            "explore", "--budget", "2", "--depth", "0",
            "--frames", "10", "--no-cache",
        ]) == 1
        assert "no failure" in capsys.readouterr().out


class TestServiceCLI:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.local_workers == 0
        assert args.campaigns == 0
        assert args.chunk_size == 4
        assert args.max_attempts == 3
        assert args.lease_ttl == 15.0
        assert args.job_timeout == 600.0

    def test_submit_requires_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_submit_parser(self):
        args = build_parser().parse_args(
            ["submit", "--spec", "spec.json", "--wait", "--timeout", "30"]
        )
        assert args.spec == "spec.json"
        assert args.wait
        assert args.timeout == 30.0
        assert args.coordinator == "http://127.0.0.1:8765"

    def test_worker_parser(self):
        args = build_parser().parse_args(
            ["worker", "--coordinator", "http://host:1", "--idle-exit", "5"]
        )
        assert args.coordinator == "http://host:1"
        assert args.idle_exit == 5.0
        assert args.max_jobs == 0  # 0 means unlimited

    def test_serve_submit_end_to_end(self, tmp_path, capsys):
        """`repro serve` + `repro submit --wait`, fully in process."""
        import socket
        import threading

        from repro.apps.brake import BrakeScenario
        from repro.harness import ScenarioSpec

        with socket.socket() as probe:  # find a free port
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        spec_path = tmp_path / "spec.json"
        ScenarioSpec(
            variant="det",
            seeds=(0, 1, 2),
            scenario=BrakeScenario(n_frames=20),
            label="cli-e2e",
        ).save(spec_path)
        serve_rc = []
        server = threading.Thread(
            target=lambda: serve_rc.append(
                main(
                    [
                        "serve",
                        "--port", str(port),
                        "--store-dir", str(tmp_path / "store"),
                        "--local-workers", "2",
                        "--campaigns", "1",
                        "--chunk-size", "2",
                    ]
                )
            ),
            daemon=True,
        )
        server.start()
        rc = main(
            [
                "submit",
                "--spec", str(spec_path),
                "--coordinator", f"http://127.0.0.1:{port}",
                "--wait",
                "--out", str(tmp_path / "result.json"),
                "--report-out", str(tmp_path / "report.json"),
            ]
        )
        server.join(timeout=30)
        assert rc == 0
        assert serve_rc == [0]
        out = capsys.readouterr().out
        assert "3 seed(s)" in out
        result = json.loads((tmp_path / "result.json").read_text())
        assert result["status"] == "done"
        assert [o["seed"] for o in result["outcomes"]] == [0, 1, 2]
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["format"] == "sweep-service/v1"
        assert report["jobs"]
