"""Shared test fixtures and world-building helpers."""

from __future__ import annotations

from repro.ara import AraProcess
from repro.network import NetworkInterface, Switch, SwitchConfig
from repro.sim import World
from repro.sim.platform import CALM, PlatformConfig
from repro.someip import SdDaemon


def build_ap_world(
    seed: int = 0,
    hosts: tuple[str, ...] = ("p1", "p2"),
    platform_config: PlatformConfig | None = None,
    switch_config: SwitchConfig | None = None,
) -> World:
    """A world with networked platforms, each running an SD daemon."""
    world = World(seed)
    switch = Switch(world.sim, world.rng.stream("net"), switch_config)
    world.attach_network(switch)
    for host in hosts:
        platform = world.add_platform(host, platform_config or CALM)
        nic = NetworkInterface(platform, switch)
        SdDaemon(platform, nic)
    return world


def make_process(world: World, host: str, name: str, **kwargs) -> AraProcess:
    """Create an AP application process on *host*."""
    return AraProcess(world.platform(host), name, **kwargs)
