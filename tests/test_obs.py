"""Tests for ``repro.obs`` — the physical-time observability subsystem.

Covers the metrics registry and cross-seed aggregation, the event bus
and Perfetto export (including the shape validator CI uses), the
unified drop accounting (switch drops and socket rx overflows mirror
into registry counters), the CLI subcommands, and the headline
invariant: enabling full observability leaves every logical trace
fingerprint byte-identical — for plain seeded runs *and* for replayed
exploration schedules.
"""

import json

import pytest

from repro import obs
from repro.obs import context as obs_context
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    Histogram,
    MetricsRegistry,
    aggregate_snapshots,
    percentile,
)


class TestMetricsPrimitives:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("hits") is counter

    def test_gauge_tracks_peak(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        for value in (3, 7, 2):
            gauge.set(value)
        assert gauge.value == 2
        assert gauge.peak == 7
        assert gauge.samples == 3

    def test_histogram_buckets_and_stats(self):
        histogram = Histogram("lat", bounds=(10, 100, 1000))
        for value in (5, 50, 500, 5000):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1, 1]  # one overflow
        assert histogram.count == 4
        assert histogram.min == 5
        assert histogram.max == 5000
        assert histogram.mean == pytest.approx(5555 / 4)

    def test_histogram_quantile_upper_edge_clamped_to_max(self):
        histogram = Histogram("lat", bounds=(10, 100, 1000))
        histogram.observe(40)
        histogram.observe(60)
        # Both samples land in the (10, 100] bucket; the estimate is the
        # bucket edge clamped to the observed maximum.
        assert histogram.quantile(0.5) == 60
        assert histogram.quantile(1.0) == 60
        assert Histogram("empty").quantile(0.5) == 0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(100, 10))

    def test_registry_kind_collision(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(4)
        registry.histogram("h", DEPTH_BUCKETS).observe(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"]["g"]["peak"] == 4
        entry = snapshot["histograms"]["h"]
        assert entry["count"] == 1
        assert entry["bounds"] == list(DEPTH_BUCKETS)
        assert sum(entry["counts"]) == 1
        json.dumps(snapshot)  # must be JSON-able as-is

    def test_percentile_nearest_rank(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 0.5) in (5, 6)  # nearest rank, ties either way
        assert percentile(values, 1.0) == 10
        assert percentile([], 0.5) == 0
        with pytest.raises(ValueError):
            percentile(values, 1.5)


class TestAggregation:
    def _snapshot(self, count):
        registry = MetricsRegistry()
        counter = registry.counter("frames")
        counter.inc(count)
        registry.gauge("depth").set(count)
        histogram = registry.histogram("lat", bounds=(10, 100))
        for _ in range(count):
            histogram.observe(50)
        return registry.snapshot()

    def test_counters_and_gauges_across_seeds(self):
        snapshots = [self._snapshot(count) for count in range(1, 12)]
        aggregate = aggregate_snapshots(snapshots)
        assert aggregate["seeds"] == 11
        frames = aggregate["counters"]["frames"]
        assert frames["total"] == sum(range(1, 12))
        assert frames["max"] == 11
        assert frames["p50"] == 6
        assert aggregate["gauges"]["depth"]["peak_max"] == 11

    def test_histograms_merge_exactly(self):
        snapshots = [self._snapshot(count) for count in range(1, 12)]
        aggregate = aggregate_snapshots(snapshots)
        merged = aggregate["histograms"]["lat"]
        assert merged["count"] == sum(range(1, 12))
        assert merged["counts"][1] == merged["count"]  # all in (10, 100]
        assert merged["seeds_observed"] == 11
        assert merged["p50"] == 50  # edge estimate clamped to max

    def test_missing_metric_counts_as_zero(self):
        with_metric = self._snapshot(4)
        empty = MetricsRegistry().snapshot()
        aggregate = aggregate_snapshots([with_metric, empty])
        assert aggregate["counters"]["frames"]["total"] == 4
        assert aggregate["counters"]["frames"]["p50"] in (0, 4)

    def test_incompatible_bounds_refuse_to_merge(self):
        left = MetricsRegistry()
        left.histogram("h", bounds=(10, 100)).observe(1)
        right = MetricsRegistry()
        right.histogram("h", bounds=(10, 200)).observe(1)
        with pytest.raises(ValueError):
            aggregate_snapshots([left.snapshot(), right.snapshot()])


class TestContextAndBus:
    def test_disabled_by_default(self):
        assert obs_context.ACTIVE.enabled is False
        assert obs.active().enabled is False

    def test_capture_installs_and_restores(self):
        before = obs_context.ACTIVE
        with obs.capture() as observation:
            assert obs_context.ACTIVE is observation
            assert observation.enabled
            with obs.capture() as inner:
                assert obs_context.ACTIVE is inner
            assert obs_context.ACTIVE is observation
        assert obs_context.ACTIVE is before

    def test_capture_restores_on_error(self):
        before = obs_context.ACTIVE
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("boom")
        assert obs_context.ACTIVE is before

    def test_span_clamps_negative_duration(self):
        bus = obs.EventBus()
        bus.span("t", "s", 100, 40)
        event = bus.events[0]
        assert event.ts == 40 and event.dur == 0

    def test_tracks_sorted_and_by_track(self):
        bus = obs.EventBus()
        bus.instant("zeta", "a", 1)
        bus.span("alpha", "b", 2, 3)
        assert bus.tracks() == ["alpha", "zeta"]
        assert [event.name for event in bus.by_track("zeta")] == ["a"]
        assert len(bus) == 2


class TestExport:
    def _observation(self):
        observation = obs.Observation()
        observation.bus.span("net", "a->b", 1_000, 3_000, bytes=64)
        observation.bus.instant("net", "drop", 2_000)
        observation.bus.span("sched", "dispatch", 500, 500)
        observation.metrics.counter("net.frames_sent").inc(2)
        return observation

    def test_trace_events_shape(self):
        events = obs.trace_events(self._observation())
        metadata = [event for event in events if event["ph"] == "M"]
        # One process_name + one thread_name per track.
        assert len(metadata) == 3
        names = {m["args"]["name"] for m in metadata}
        assert {"repro", "net", "sched"} == names
        spans = [event for event in events if event["ph"] == "X"]
        assert all(event["dur"] >= 0 for event in spans)
        assert all("wall_ns" in event["args"] for event in spans)
        assert obs.validate_trace_data(events) == []

    def test_write_trace_and_validate_roundtrip(self, tmp_path):
        path = obs.write_trace(self._observation(), tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert obs.validate_trace_data(data) == []
        assert data["otherData"]["tracks"] == ["net", "sched"]

    def test_validator_rejects_malformed(self):
        assert obs.validate_trace_data(42) != []
        assert obs.validate_trace_data({"nope": []}) != []
        assert obs.validate_trace_data([{"ph": "Q", "name": "x"}]) != []
        assert obs.validate_trace_data([{"ph": "X", "name": "x"}]) != []
        bad_dur = [{"ph": "X", "name": "x", "ts": 1, "dur": -5, "pid": 1, "tid": 1}]
        assert any("dur" in problem for problem in obs.validate_trace_data(bad_dur))
        backwards = [
            {"ph": "i", "name": "a", "ts": 10, "pid": 1, "tid": 1},
            {"ph": "i", "name": "b", "ts": 5, "pid": 1, "tid": 1},
        ]
        assert any(
            "backwards" in problem for problem in obs.validate_trace_data(backwards)
        )

    def test_metrics_document(self, tmp_path):
        path = obs.write_metrics(self._observation(), tmp_path / "metrics.json")
        document = json.loads(path.read_text())
        assert document["format"] == "repro-metrics/v1"
        assert document["metrics"]["counters"]["net.frames_sent"] == 2


class TestDropAccountingUnification:
    """Satellite: legacy int counters == registry counters, both paths."""

    def _make_net(self, seed=0, config=None):
        from repro.network import NetworkInterface, Switch
        from repro.sim import World
        from repro.sim.platform import CALM

        world = World(seed)
        a = world.add_platform("a", CALM)
        b = world.add_platform("b", CALM)
        switch = Switch(world.sim, world.rng.stream("net"), config)
        world.attach_network(switch)
        return world, NetworkInterface(a, switch), NetworkInterface(b, switch)

    def test_switch_drop_probability_path(self):
        from repro.network import SwitchConfig
        from repro.time import MS

        config = SwitchConfig(drop_probability=1.0)
        world, nic_a, nic_b = self._make_net(config=config)
        src = nic_a.bind(1000)
        nic_b.bind(2000)
        with obs.capture() as observation:
            for _ in range(7):
                src.send("b", 2000, payload=b"x", size_bytes=8)
            world.run_for(10 * MS)
        switch = world.network
        assert switch.frames_dropped == 7
        assert observation.metrics.counter("net.frames_dropped").value == 7
        assert observation.metrics.counter("net.frames_sent").value == 7
        drops = [
            event
            for event in observation.bus.by_track("network")
            if event.name.startswith("drop ")
        ]
        assert len(drops) == 7

    def test_socket_rx_overflow_path(self):
        from repro.time import MS

        world, nic_a, nic_b = self._make_net()
        src = nic_a.bind(1000)
        dst = nic_b.bind(2000, rx_capacity=2)
        with obs.capture() as observation:
            for _ in range(6):
                src.send("b", 2000, payload=b"x", size_bytes=8)
            world.run_for(100 * MS)
        # Nobody reads the rx queue, so 4 of 6 frames overflow.
        assert dst.rx_dropped == 4
        assert dst.rx.dropped == 4
        assert observation.metrics.counter("net.socket_rx_dropped").value == 4
        assert observation.metrics.counter("queue.dropped").value == 4
        overflow = [
            event
            for event in observation.bus.by_track("network")
            if event.name.startswith("rx-overflow ")
        ]
        assert len(overflow) == 4

    def test_disabled_run_still_counts_legacy_attributes(self):
        from repro.time import MS

        world, nic_a, nic_b = self._make_net()
        src = nic_a.bind(1000)
        dst = nic_b.bind(2000, rx_capacity=1)
        for _ in range(3):
            src.send("b", 2000, payload=b"x", size_bytes=8)
        world.run_for(100 * MS)
        assert dst.rx_dropped == 2
        assert dst.rx.dropped == 2


class TestZeroPerturbation:
    """Headline invariant: obs on/off => byte-identical fingerprints."""

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_det_brake_fingerprints_identical(self, seed):
        from repro.apps.brake.det import run_det_brake_assistant
        from repro.explore import calibration_scenario

        scenario = calibration_scenario(20, deterministic_camera=True)
        baseline = run_det_brake_assistant(seed, scenario)
        with obs.capture() as observation:
            observed = run_det_brake_assistant(seed, scenario)
        assert dict(baseline.trace_fingerprints) == dict(
            observed.trace_fingerprints
        )
        assert len(observation.bus) > 0  # the run really was observed

    def test_nondet_brake_fingerprints_identical(self):
        from repro.apps.brake.nondet import run_nondet_brake_assistant
        from repro.explore import calibration_scenario

        scenario = calibration_scenario(20)
        baseline = run_nondet_brake_assistant(3, scenario)
        with obs.capture():
            observed = run_nondet_brake_assistant(3, scenario)
        assert dict(baseline.trace_fingerprints) == dict(
            observed.trace_fingerprints
        )

    def test_replayed_schedule_fingerprints_identical(self):
        """Obs must not perturb a replayed exploration schedule either."""
        from repro.apps.brake.det import run_det_brake_assistant
        from repro.explore import (
            IN_BUDGET_PREEMPT_NS,
            PctStrategy,
            calibration_scenario,
        )
        from repro.sim.rng import stream_hooks

        scenario = calibration_scenario(15, deterministic_camera=True)
        strategy = PctStrategy(depth=4, preempt_ns=IN_BUDGET_PREEMPT_NS, seed=5)
        schedule = strategy.schedule_for(1, base_seed=0, horizon=400)
        assert schedule.preemptions  # the schedule actually intervenes

        with stream_hooks(schedule.controller(exclude=("camera",))):
            baseline = run_det_brake_assistant(0, scenario)
        with obs.capture() as observation:
            with stream_hooks(schedule.controller(exclude=("camera",))):
                observed = run_det_brake_assistant(0, scenario)
        assert dict(baseline.trace_fingerprints) == dict(
            observed.trace_fingerprints
        )
        assert len(observation.bus) > 0


class TestAcceptance:
    """ISSUE acceptance: 4+ tracks in the brake trace; 10+ seed merge."""

    def test_brake_trace_has_four_tracks(self, tmp_path):
        from repro.explore import calibration_scenario

        scenario = calibration_scenario(20, deterministic_camera=True)
        observation, _ = obs.observe_brake_run(0, scenario, "det")
        assert set(observation.bus.tracks()) >= {
            "scheduler",
            "reactors",
            "dear",
            "network",
        }
        path = obs.write_trace(observation, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert obs.validate_trace_data(data) == []
        assert len(data["otherData"]["tracks"]) >= 4

    def test_histogram_aggregated_across_ten_sweep_seeds(self, tmp_path):
        from functools import partial

        from repro.explore import calibration_scenario
        from repro.harness.sweep import SweepRunner, merge_metric_snapshots
        from repro.obs.drivers import run_brake_with_obs

        scenario = calibration_scenario(10, deterministic_camera=True)
        sweep = SweepRunner(workers=2, use_cache=False)
        runs = sweep.map(
            partial(run_brake_with_obs, scenario=scenario, variant="det"),
            range(10),
            name="test-obs-sweep",
        )
        assert len(runs) == 10
        assert all(run["tracks"] for run in runs)
        aggregate = merge_metric_snapshots(runs)
        assert aggregate["seeds"] == 10
        lag = aggregate["histograms"]["reactor.lag_ns"]
        assert lag["seeds_observed"] == 10
        assert lag["count"] > 0
        assert lag["p95"] >= lag["p50"] >= 0

    def test_observed_drivers_are_picklable(self):
        import pickle
        from functools import partial

        from repro.obs.drivers import run_brake_with_obs

        pickle.dumps(partial(run_brake_with_obs, variant="det"))


class TestCli:
    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "trace", "det",
            "--frames", "10",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        data = json.loads(trace_path.read_text())
        assert obs.validate_trace_data(data) == []
        document = json.loads(metrics_path.read_text())
        assert document["format"] == "repro-metrics/v1"
        out = capsys.readouterr().out
        assert "trace:" in out

    def test_metrics_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "agg.json"
        code = main([
            "metrics", "det",
            "--seeds", "3",
            "--frames", "10",
            "--workers", "1",
            "--no-cache",
            "--metrics-out", str(out_path),
        ])
        assert code == 0
        document = json.loads(out_path.read_text())
        assert document["format"] == "repro-metrics-aggregate/v1"
        assert document["aggregate"]["seeds"] == 3
        assert document["aggregate"]["histograms"]
        out = capsys.readouterr().out
        assert "OBS" in out

    def test_trace_out_on_regular_subcommand(self, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "det-trace.json"
        code = main([
            "det", "--seeds", "1", "--frames", "10", "--workers", "1",
            "--no-cache", "--trace-out", str(trace_path),
        ])
        assert code == 0
        data = json.loads(trace_path.read_text())
        assert obs.validate_trace_data(data) == []
