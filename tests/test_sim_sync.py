"""Unit tests for semaphores and message queues."""

import pytest

from repro.sim import Compute, Sleep, World
from repro.sim.platform import PlatformConfig
from repro.sim.sync import Semaphore
from repro.time import MS


def make_platform(seed=0, cores=1):
    world = World(seed)
    config = PlatformConfig(num_cores=cores, dispatch_jitter_ns=0, timer_jitter_ns=0)
    return world, world.add_platform("p", config)


class TestSemaphore:
    def test_acquire_release_cycle(self):
        world, platform = make_platform()
        sem = Semaphore(initial=1)
        log = []

        def body(name):
            yield from sem.acquire()
            log.append((name, "in"))
            yield Compute(5 * MS)
            log.append((name, "out"))
            yield from sem.release()

        platform.spawn("a", body("a"))
        platform.spawn("b", body("b"))
        world.run_to_completion()
        # With one permit, sections never interleave.
        assert log[0][1] == "in" and log[1][1] == "out"
        assert log[2][1] == "in" and log[3][1] == "out"

    def test_counting_allows_n_holders(self):
        world, platform = make_platform(cores=3)
        sem = Semaphore(initial=2)
        inside = [0]
        peak = [0]

        def body():
            yield from sem.acquire()
            inside[0] += 1
            peak[0] = max(peak[0], inside[0])
            yield Compute(5 * MS)
            inside[0] -= 1
            yield from sem.release()

        for index in range(4):
            platform.spawn(f"t{index}", body())
        world.run_to_completion()
        assert peak[0] == 2

    def test_release_before_acquire(self):
        world, platform = make_platform()
        sem = Semaphore(initial=0)
        log = []

        def producer():
            yield Sleep(2 * MS)
            yield from sem.release()

        def consumer():
            yield from sem.acquire()
            log.append(world.now)

        platform.spawn("c", consumer())
        platform.spawn("p", producer())
        world.run_to_completion()
        assert log == [2 * MS]

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(initial=-1)


class TestMessageQueueBlocking:
    def test_put_blocks_when_full(self):
        world, platform = make_platform()
        queue = platform.queue(capacity=1)
        log = []

        def producer():
            yield from queue.put("a")
            log.append(("put-a", world.now))
            yield from queue.put("b")
            log.append(("put-b", world.now))

        def consumer():
            yield Sleep(10 * MS)
            item = yield from queue.get()
            log.append(("got", item, world.now))

        platform.spawn("p", producer())
        platform.spawn("c", consumer())
        world.run_to_completion()
        assert log[0] == ("put-a", 0)
        # put-b only succeeds once the consumer drained a slot.
        put_b = [entry for entry in log if entry[0] == "put-b"][0]
        assert put_b[1] >= 10 * MS

    def test_get_until_times_out(self):
        world, platform = make_platform()
        queue = platform.queue()
        log = []

        def consumer():
            item = yield from queue.get_until(platform.local_now() + 5 * MS)
            log.append((item, world.now))

        platform.spawn("c", consumer())
        world.run_to_completion()
        assert log == [(None, 5 * MS)]

    def test_get_until_returns_item_in_time(self):
        world, platform = make_platform()
        queue = platform.queue()
        log = []

        def consumer():
            item = yield from queue.get_until(platform.local_now() + 50 * MS)
            log.append(item)

        platform.spawn("c", consumer())
        world.sim.at(2 * MS, lambda: queue.post("payload"))
        world.run_to_completion()
        assert log == ["payload"]

    def test_try_get(self):
        world, platform = make_platform()
        queue = platform.queue()
        queue.post("x")
        log = []

        def consumer():
            log.append((yield from queue.try_get()))
            log.append((yield from queue.try_get()))

        platform.spawn("c", consumer())
        world.run_to_completion()
        assert log == ["x", None]


class TestOverflowPolicies:
    def _full_queue(self, policy):
        world, platform = make_platform()
        queue = platform.queue(capacity=2, overflow=policy)
        queue.post(1)
        queue.post(2)
        return world, queue

    def test_error_policy_raises(self):
        world, queue = self._full_queue("error")
        with pytest.raises(OverflowError):
            queue.post(3)

    def test_drop_new_discards_posted(self):
        world, queue = self._full_queue("drop-new")
        assert queue.post(3) is False
        assert queue.peek_all() == [1, 2]
        assert queue.dropped == 1

    def test_drop_old_discards_oldest(self):
        world, queue = self._full_queue("drop-old")
        assert queue.post(3) is True
        assert queue.peek_all() == [2, 3]
        assert queue.dropped == 1

    def test_unknown_policy_rejected(self):
        world, platform = make_platform()
        with pytest.raises(ValueError):
            platform.queue(overflow="maybe")

    def test_len_and_capacity(self):
        world, platform = make_platform()
        queue = platform.queue(capacity=3)
        assert queue.capacity == 3
        queue.post("a")
        assert len(queue) == 1
