"""Unit tests for the LET baseline."""

import pytest

from repro.let import LetChannel, LetExecutor, LetTask
from repro.sim import World
from repro.sim.platform import CALM, MINNOWBOARD
from repro.time import MS


def make_executor(seed=0, config=CALM):
    world = World(seed)
    platform = world.add_platform("ecu", config)
    return world, LetExecutor(platform)


class TestLetSemantics:
    def test_outputs_visible_exactly_one_period_later(self):
        world, executor = make_executor()
        channel = LetChannel("c", keep_history=True)
        task = LetTask(
            "producer",
            period_ns=10 * MS,
            body=lambda inputs: {"out": world.now},
            writes={"out": channel},
            wcet_ns=2 * MS,
        )
        executor.add_task(task)
        executor.start(35 * MS)
        world.run_to_completion()
        publish_times = [time for time, _ in channel.history]
        assert publish_times == [10 * MS, 20 * MS, 30 * MS, 40 * MS]
        # The body runs *inside* the window (here: wcet after release),
        # but its output becomes visible only at the window end.
        assert [value for _, value in channel.history] == [
            2 * MS, 12 * MS, 22 * MS, 32 * MS
        ]

    def test_chain_latency_is_one_period_per_hop(self):
        world, executor = make_executor()
        c1 = LetChannel("c1")
        c2 = LetChannel("c2", keep_history=True)
        executor.add_task(LetTask(
            "stage1", 10 * MS,
            body=lambda inputs: {"out": "payload"},
            writes={"out": c1}, wcet_ns=1 * MS,
        ))
        executor.add_task(LetTask(
            "stage2", 10 * MS,
            body=lambda inputs: {"out": inputs["inp"]},
            reads={"inp": c1}, writes={"out": c2}, wcet_ns=1 * MS,
        ))
        executor.start(50 * MS)
        world.run_to_completion()
        arrivals = [time for time, value in c2.history if value == "payload"]
        # stage1 publishes at 10ms; stage2 samples it at its 10ms release
        # and publishes at 20ms: two periods end-to-end.
        assert arrivals and arrivals[0] == 20 * MS

    def test_overrun_skips_publish(self):
        world, executor = make_executor()
        channel = LetChannel("c", initial="old")
        task = LetTask(
            "slow", 10 * MS,
            body=lambda inputs: {"out": "new"},
            writes={"out": channel},
            wcet_ns=15 * MS,  # exceeds the period
        )
        executor.add_task(task)
        executor.start(10 * MS)
        world.run_to_completion()
        assert task.overruns == 1
        assert task.completions == 0
        assert channel.value == "old"

    def test_determinism_across_seeds_with_jitter(self):
        """LET dataflow must not depend on scheduling noise (its point)."""

        def run(seed):
            world, executor = make_executor(seed, config=MINNOWBOARD)
            c1 = LetChannel("c1")
            c2 = LetChannel("c2", keep_history=True)
            counter = {"n": 0}

            def produce(inputs):
                counter["n"] += 1
                return {"out": counter["n"]}

            executor.add_task(LetTask(
                "p", 10 * MS, produce, writes={"out": c1}, wcet_ns=3 * MS,
            ))
            executor.add_task(LetTask(
                "q", 10 * MS,
                body=lambda inputs: {"out": inputs["inp"]},
                reads={"inp": c1}, writes={"out": c2}, wcet_ns=3 * MS,
            ))
            executor.start(100 * MS)
            world.run_to_completion()
            return tuple(c2.history)

        assert len({run(seed) for seed in range(5)}) == 1

    def test_offset_shifts_schedule(self):
        world, executor = make_executor()
        channel = LetChannel("c", keep_history=True)
        executor.add_task(LetTask(
            "t", 10 * MS, lambda inputs: {"out": 1},
            writes={"out": channel}, offset_ns=3 * MS,
        ))
        executor.start(25 * MS)
        world.run_to_completion()
        assert [time for time, _ in channel.history] == [13 * MS, 23 * MS, 33 * MS]


class TestValidation:
    def test_bad_period(self):
        with pytest.raises(ValueError):
            LetTask("t", 0, lambda inputs: None)

    def test_add_after_start_rejected(self):
        world, executor = make_executor()
        executor.start(10 * MS)
        with pytest.raises(RuntimeError):
            executor.add_task(LetTask("t", 10 * MS, lambda inputs: None))
