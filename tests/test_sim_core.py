"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.at(30, lambda: fired.append("c"))
        sim.at(10, lambda: fired.append("a"))
        sim.at(20, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 30

    def test_equal_time_fifo(self):
        sim = Simulator()
        fired = []
        for label in "abcde":
            sim.at(10, lambda label=label: fired.append(label))
        sim.run()
        assert fired == list("abcde")

    def test_priority_orders_within_time(self):
        sim = Simulator()
        fired = []
        sim.at(10, lambda: fired.append("late"), priority=200)
        sim.at(10, lambda: fired.append("early"), priority=50)
        sim.run()
        assert fired == ["early", "late"]

    def test_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.at(100, lambda: sim.after(50, lambda: times.append(sim.now)))
        sim.run()
        assert times == [150]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.at(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(50, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1, lambda: None)


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.at(10, lambda: fired.append(1))
        sim.at(100, lambda: fired.append(2))
        sim.run(until=50)
        assert fired == [1]
        assert sim.now == 50
        sim.run()
        assert fired == [1, 2]

    def test_run_until_advances_time_without_events(self):
        sim = Simulator()
        sim.run(until=1000)
        assert sim.now == 1000

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.at(50, lambda: fired.append(1))
        sim.run(until=50)
        assert fired == [1]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.at(10, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_count_ignores_cancelled(self):
        sim = Simulator()
        keep = sim.at(10, lambda: None)
        drop = sim.at(20, lambda: None)
        drop.cancel()
        assert sim.pending_count() == 1
        assert not keep.cancelled

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.at(10, lambda: None)
        sim.run()
        handle.cancel()  # must not raise


class TestStep:
    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.at(1, reenter)
        sim.run()
