"""Tests for the Figure 1 counter application."""

from collections import Counter

import pytest

from repro.apps.counter import run_det, run_nondet


class TestNondet:
    def test_result_in_valid_range(self):
        for seed in range(6):
            result = run_nondet(seed)
            assert result.printed_value in (0, 1, 2, 3)

    def test_same_seed_reproducible(self):
        assert run_nondet(11).printed_value == run_nondet(11).printed_value

    def test_multiple_outcomes_across_seeds(self):
        """The essence of Figure 1: the program has several behaviours."""
        outcomes = {run_nondet(seed).printed_value for seed in range(30)}
        assert len(outcomes) >= 2

    def test_wrong_results_occur(self):
        """Some seeds must produce a value other than the intended 3."""
        outcomes = [run_nondet(seed).printed_value for seed in range(30)]
        assert any(value != 3 for value in outcomes)


class TestDet:
    @pytest.mark.parametrize("seed", range(4))
    def test_always_three(self, seed):
        assert run_det(seed).printed_value == 3


class TestContrast:
    def test_histogram_shapes(self):
        nondet = Counter(run_nondet(seed).printed_value for seed in range(25))
        det = Counter(run_det(seed).printed_value for seed in range(4))
        assert set(det) == {3}
        assert len(nondet) >= 2
