"""Integration tests for SOME/IP service discovery."""


from repro.network import NetworkInterface, Switch
from repro.sim import World
from repro.sim.platform import CALM
from repro.someip import SdConfig, SdDaemon
from repro.time import MS, SEC


def make_world(seed=0, hosts=("a", "b"), sd_config=None):
    world = World(seed)
    switch = Switch(world.sim, world.rng.stream("net"))
    world.attach_network(switch)
    daemons = {}
    for host in hosts:
        platform = world.add_platform(host, CALM)
        nic = NetworkInterface(platform, switch)
        daemons[host] = SdDaemon(platform, nic, sd_config)
    return world, daemons


class TestOfferFind:
    def test_offer_reaches_peer_cache(self):
        world, daemons = make_world()
        daemons["a"].offer(0x1234, 1, major_version=1, rpc_port=40000)
        world.run_for(100 * MS)
        entry = daemons["b"].find(0x1234, 1)
        assert entry is not None
        assert entry.host == "a"
        assert entry.port == 40000
        assert entry.major_version == 1

    def test_find_local_offer(self):
        world, daemons = make_world()
        daemons["a"].offer(0x1234, 1, 1, 40000)
        assert daemons["a"].find(0x1234, 1) is not None

    def test_unknown_service_not_found(self):
        world, daemons = make_world()
        world.run_for(100 * MS)
        assert daemons["b"].find(0x9999, 1) is None

    def test_instance_id_distinguishes(self):
        world, daemons = make_world()
        daemons["a"].offer(0x1234, 1, 1, 40000)
        daemons["a"].offer(0x1234, 2, 1, 40001)
        world.run_for(100 * MS)
        assert daemons["b"].find(0x1234, 1).port == 40000
        assert daemons["b"].find(0x1234, 2).port == 40001

    def test_stop_offer_purges_cache(self):
        world, daemons = make_world()
        daemons["a"].offer(0x1234, 1, 1, 40000)
        world.run_for(100 * MS)
        assert daemons["b"].find(0x1234, 1) is not None
        daemons["a"].stop_offer(0x1234, 1)
        world.run_for(100 * MS)
        assert daemons["b"].find(0x1234, 1) is None

    def test_ttl_expiry_without_renewal(self):
        config = SdConfig(cyclic_offer_period_ns=100 * SEC, ttl_ns=1 * SEC)
        world, daemons = make_world(sd_config=config)
        daemons["a"].offer(0x1234, 1, 1, 40000)
        world.run_for(500 * MS)
        assert daemons["b"].find(0x1234, 1) is not None
        world.run_for(2 * SEC)
        assert daemons["b"].find(0x1234, 1) is None

    def test_cyclic_offer_renews_ttl(self):
        config = SdConfig(cyclic_offer_period_ns=500 * MS, ttl_ns=1 * SEC)
        world, daemons = make_world(sd_config=config)
        daemons["a"].offer(0x1234, 1, 1, 40000)
        world.run_for(5 * SEC)
        assert daemons["b"].find(0x1234, 1) is not None


class TestFindBlocking:
    def test_blocks_until_offer(self):
        world, daemons = make_world()
        results = []

        def finder():
            entry = yield from daemons["b"].find_blocking(0x1234, 1, 10 * SEC)
            results.append(entry)

        world.platform("b").spawn("finder", finder())
        world.sim.at(
            2 * SEC, lambda: daemons["a"].offer(0x1234, 1, 1, 40000)
        )
        world.run_for(10 * SEC)
        assert len(results) == 1
        assert results[0] is not None
        assert results[0].host == "a"

    def test_timeout_returns_none(self):
        world, daemons = make_world()
        results = []

        def finder():
            entry = yield from daemons["b"].find_blocking(0x4321, 1, 500 * MS)
            results.append(entry)

        world.platform("b").spawn("finder", finder())
        world.run_for(2 * SEC)
        assert results == [None]

    def test_immediate_return_when_cached(self):
        world, daemons = make_world()
        daemons["a"].offer(0x1234, 1, 1, 40000)
        world.run_for(100 * MS)
        results = []

        def finder():
            entry = yield from daemons["b"].find_blocking(0x1234, 1, 1 * SEC)
            results.append((entry, world.now))

        start = world.now
        world.platform("b").spawn("finder", finder())
        world.run_for(1 * SEC)
        entry, finished = results[0]
        assert entry is not None
        assert finished - start < 10 * MS


class TestSubscriptions:
    def test_subscribe_registers_subscriber(self):
        world, daemons = make_world()
        daemons["a"].offer(0x1234, 1, 1, 40000)
        world.run_for(100 * MS)
        entry = daemons["b"].find(0x1234, 1)
        daemons["b"].subscribe(entry, 0x8001, notify_port=41000)
        world.run_for(100 * MS)
        assert daemons["a"].subscribers(0x1234, 1, 0x8001) == [("b", 41000)]

    def test_subscription_to_unoffered_service_ignored(self):
        world, daemons = make_world()
        from repro.someip.sd import ServiceEntry

        fake = ServiceEntry(0x7777, 1, 1, "a", 12345)
        daemons["b"].subscribe(fake, 0x8001, notify_port=41000)
        world.run_for(100 * MS)
        assert daemons["a"].subscribers(0x7777, 1, 0x8001) == []

    def test_subscription_expires_without_renewal(self):
        # Cut renewals by using a huge cyclic period after subscribing.
        config = SdConfig(cyclic_offer_period_ns=100 * SEC, ttl_ns=1 * SEC)
        world, daemons = make_world(sd_config=config)
        daemons["a"].offer(0x1234, 1, 1, 40000)
        # Let the initial offer propagate via the find path.
        results = []

        def subscriber():
            entry = yield from daemons["b"].find_blocking(0x1234, 1, 5 * SEC)
            daemons["b"].subscribe(entry, 0x8001, notify_port=41000)
            results.append(entry)

        world.platform("b").spawn("sub", subscriber())
        world.run_for(500 * MS)
        assert results
        assert daemons["a"].subscribers(0x1234, 1, 0x8001)
        world.run_for(3 * SEC)
        assert daemons["a"].subscribers(0x1234, 1, 0x8001) == []

    def test_multiple_subscribers(self):
        world, daemons = make_world(hosts=("a", "b", "c"))
        daemons["a"].offer(0x1234, 1, 1, 40000)
        world.run_for(100 * MS)
        for host, port in (("b", 41000), ("c", 42000)):
            entry = daemons[host].find(0x1234, 1)
            daemons[host].subscribe(entry, 0x8001, notify_port=port)
        world.run_for(100 * MS)
        assert daemons["a"].subscribers(0x1234, 1, 0x8001) == [
            ("b", 41000),
            ("c", 42000),
        ]
