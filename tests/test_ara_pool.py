"""Unit tests for the middleware dispatch pool."""

import pytest

from repro.ara import DispatchPool
from repro.sim import Compute, World
from repro.sim.platform import CALM, PlatformConfig
from repro.time import MS


def make_pool(seed=0, workers=2, cores=2):
    world = World(seed)
    config = PlatformConfig(num_cores=cores, dispatch_jitter_ns=0, timer_jitter_ns=0)
    platform = world.add_platform("p", config)
    return world, DispatchPool(platform, "pool", workers)


class TestPool:
    def test_jobs_run(self):
        world, pool = make_pool()
        done = []

        def job(i):
            def body():
                yield Compute(1 * MS)
                done.append(i)

            return body

        for i in range(5):
            pool.submit(job(i))
        world.run_for(100 * MS)
        assert sorted(done) == [0, 1, 2, 3, 4]
        assert pool.jobs_completed == 5
        assert pool.jobs_submitted == 5

    def test_parallelism_bounded_by_workers(self):
        world, pool = make_pool(workers=2, cores=4)
        running = [0]
        peak = [0]

        def body():
            running[0] += 1
            peak[0] = max(peak[0], running[0])
            yield Compute(10 * MS)
            running[0] -= 1

        for _ in range(6):
            pool.submit(lambda: body())
        world.run_for(500 * MS)
        assert peak[0] == 2

    def test_execution_order_varies_with_seed(self):
        """With OS dispatch jitter (as on a real board), workers pick up
        queued jobs in nondeterministic order — the paper's source 1."""
        orders = set()
        for seed in range(12):
            world = World(seed)
            config = PlatformConfig(
                num_cores=3, dispatch_jitter_ns=100_000, timer_jitter_ns=0
            )
            platform = world.add_platform("p", config)
            pool = DispatchPool(platform, "pool", workers=3)
            order = []

            def job(i, order=order):
                def body():
                    order.append(i)
                    yield Compute(1 * MS)

                return body

            for i in range(4):
                pool.submit(job(i))
            world.run_for(100 * MS)
            orders.add(tuple(order))
        assert len(orders) > 1

    def test_stop_drains_then_exits(self):
        world, pool = make_pool()
        done = []

        def body():
            yield Compute(1 * MS)
            done.append(1)

        pool.submit(lambda: body())
        pool.stop()
        pool.submit(lambda: body())  # ignored after stop
        world.run_to_completion()
        assert done == [1]

    def test_worker_count_validation(self):
        world = World(0)
        platform = world.add_platform("p", CALM)
        with pytest.raises(ValueError):
            DispatchPool(platform, "bad", workers=0)

    def test_backlog_reporting(self):
        world, pool = make_pool(workers=1, cores=1)

        def body():
            yield Compute(10 * MS)

        for _ in range(3):
            pool.submit(lambda: body())
        assert pool.backlog == 3  # nothing started yet (no sim step)
        world.run_for(100 * MS)
        assert pool.backlog == 0
