"""Tests for fleet telemetry (``repro.obs.fleet``).

Covers the process-global fleet registry and its null-object guard, the
Prometheus text exposition and its validator, coordinator-stamped job
timelines and the Perfetto fleet trace, worker heartbeat-failure
accounting, concurrent scraping against a live service, the exact
histogram extremes, and the headline invariant inherited from PR 3:
enabling fleet telemetry perturbs **nothing** — every trace fingerprint
and every per-seed result byte stays identical.
"""

import json
import logging
import pickle
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.brake.scenario import BrakeScenario
from repro.faults import FaultPlan
from repro.harness import ScenarioSpec, SweepRunner
from repro.obs import fleet
from repro.obs.export import validate_trace_data
from repro.obs.fleet import (
    FleetTelemetry,
    NullFleet,
    fleet_capture,
    fleet_trace_events,
    merge_fleet_documents,
    prometheus_text,
    snapshot_document,
    validate_prometheus_text,
    write_fleet_trace,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    aggregate_snapshots,
    labeled,
)
from repro.service import (
    Coordinator,
    CoordinatorConfig,
    LocalService,
    ResultStore,
    Worker,
)
from repro.harness.sweep import _encode_value


@pytest.fixture(autouse=True)
def restore_fleet_handle():
    """Tests toggle the process-global handle; always put it back."""
    previous = fleet.ACTIVE
    yield
    fleet.ACTIVE = previous


def make_spec(seeds=(0, 1, 2, 3, 4), variant="det", frames=40, faults=None):
    return ScenarioSpec(
        variant=variant,
        seeds=tuple(seeds),
        scenario=BrakeScenario(n_frames=frames),
        faults=faults,
        label="fleet-test",
    )


def local_reference(spec):
    return SweepRunner(workers=1, use_cache=False).run_spec(spec).values()


def wire_outcomes(seeds, prefix="value"):
    outcomes = []
    for seed in seeds:
        encoding, payload = _encode_value(f"{prefix}-{seed}")
        outcomes.append(
            {
                "seed": seed,
                "encoding": encoding,
                "payload": payload,
                "error": None,
                "cached": False,
                "elapsed_s": 0.0,
            }
        )
    return outcomes


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clocked(tmp_path):
    clock = FakeClock()
    config = CoordinatorConfig(
        chunk_size=2,
        max_attempts=3,
        lease_ttl_s=5.0,
        job_timeout_s=60.0,
        retry_backoff_s=1.0,
    )
    return Coordinator(ResultStore(tmp_path), config, clock=clock), clock


# ---------------------------------------------------------------------------
# Histogram extremes: quantile(0.0)/quantile(1.0) are exact, merge included.
# ---------------------------------------------------------------------------


class TestHistogramExtremes:
    def test_quantile_0_and_1_are_exact_observations(self):
        h = Histogram("lag", bounds=(10, 100, 1000))
        for value in (3, 47, 252):
            h.observe(value)
        assert h.quantile(0.0) == 3  # not bucket edge 10
        assert h.quantile(1.0) == 252  # not bucket edge 1000

    def test_interior_quantiles_stay_bucket_estimates(self):
        h = Histogram("lag", bounds=(10, 100, 1000))
        for value in (3, 47, 252):
            h.observe(value)
        # p50 lands in the (10, 100] bucket: edge estimate, but never
        # beyond the observed maximum.
        assert h.quantile(0.5) == 100
        assert h.quantile(0.95) <= h.max

    def test_single_sample_every_quantile_is_that_sample(self):
        h = Histogram("lag", bounds=(1000, 2000))
        h.observe(3)
        assert h.quantile(0.0) == 3
        assert h.quantile(1.0) == 3
        # Even interior estimates clamp to the observed max.
        assert h.quantile(0.5) == 3

    def test_empty_histogram_quantiles_are_zero(self):
        h = Histogram("lag", bounds=(10, 100))
        assert h.quantile(0.0) == 0
        assert h.quantile(1.0) == 0

    def test_quantile_out_of_range_raises(self):
        h = Histogram("lag", bounds=(10,))
        h.observe(5)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_overflow_bucket_p100_is_exact_max(self):
        h = Histogram("lag", bounds=(10,))
        h.observe(123456)
        assert h.quantile(1.0) == 123456

    def test_snapshot_carries_exact_extremes(self):
        registry = MetricsRegistry()
        h = registry.histogram("lag", bounds=(10, 100))
        h.observe(7)
        h.observe(42)
        entry = registry.snapshot()["histograms"]["lag"]
        assert entry["min"] == 7
        assert entry["max"] == 42

    def test_merged_histograms_keep_exact_extremes(self):
        def snap(values):
            registry = MetricsRegistry()
            h = registry.histogram("lag", bounds=(10, 100, 1000))
            for value in values:
                h.observe(value)
            return registry.snapshot()

        merged = aggregate_snapshots([snap([3, 47]), snap([252, 9])])
        entry = merged["histograms"]["lag"]
        assert entry["min"] == 3
        assert entry["max"] == 252
        assert entry["count"] == 4
        # Merged interior quantiles never exceed the merged maximum.
        assert entry["p95"] <= 252


# ---------------------------------------------------------------------------
# The registry handle: enable/disable, the guard, env policy.
# ---------------------------------------------------------------------------


class TestFleetHandle:
    def test_disabled_by_default_and_null_snapshot_is_empty(self):
        assert isinstance(fleet.ACTIVE, (NullFleet, FleetTelemetry))
        null = NullFleet()
        assert not null.enabled
        snap = null.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_fleet_capture_installs_and_restores(self):
        before = fleet.ACTIVE
        with fleet_capture() as f:
            assert fleet.ACTIVE is f
            assert f.enabled
            f.inc("fleet.test.counter")
            assert f.counter_value("fleet.test.counter") == 1
        assert fleet.ACTIVE is before

    def test_enable_is_idempotent_unless_fresh(self):
        with fleet_capture():
            first = fleet.enable()
            first.inc("fleet.test.kept")
            again = fleet.enable()
            assert again is first
            assert again.counter_value("fleet.test.kept") == 1
            fresh = fleet.enable(fresh=True)
            assert fresh is not first
            assert fresh.counter_value("fleet.test.kept") == 0

    def test_disable_restores_null_handle(self):
        with fleet_capture():
            fleet.disable()
            assert not fleet.ACTIVE.enabled

    def test_guarded_site_records_nothing_when_disabled(self):
        with fleet_capture() as f:
            fleet.disable()
            g = fleet.ACTIVE
            if g.enabled:  # the instrumentation-site idiom
                g.inc("fleet.test.never")
            assert f.counter_value("fleet.test.never") == 0

    def test_observe_and_gauge(self):
        with fleet_capture() as f:
            f.observe("fleet.test.latency_ns", 5_000)
            f.set_gauge("fleet.test.depth", 3)
            f.set_gauge("fleet.test.depth", 1)
            snap = f.snapshot()
            assert snap["histograms"]["fleet.test.latency_ns"]["count"] == 1
            assert snap["gauges"]["fleet.test.depth"]["value"] == 1
            assert snap["gauges"]["fleet.test.depth"]["peak"] == 3

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("0", False),
            ("no", False),
            ("off", False),
            ("False", False),
            ("1", True),
            ("yes", True),
            ("", True),
        ],
    )
    def test_enabled_by_env_values(self, value, expected):
        assert fleet.enabled_by_env({fleet.FLEET_ENV: value}) is expected

    def test_enabled_by_env_default_is_yes(self):
        assert fleet.enabled_by_env({}) is True

    def test_enable_from_env_respects_optout(self, monkeypatch):
        with fleet_capture():
            fleet.disable()
            monkeypatch.setenv(fleet.FLEET_ENV, "0")
            handle = fleet.enable_from_env()
            assert not handle.enabled
            monkeypatch.setenv(fleet.FLEET_ENV, "1")
            handle = fleet.enable_from_env()
            assert handle.enabled

    def test_snapshot_document_shape(self):
        with fleet_capture() as f:
            f.inc("fleet.test.n", 4)
            doc = snapshot_document()
            assert doc["format"] == fleet.FLEET_FORMAT
            assert doc["enabled"] is True
            assert doc["metrics"]["counters"]["fleet.test.n"] == 4
            assert isinstance(doc["pid"], int)

    def test_merge_fleet_documents_sums_counters(self):
        def doc(n):
            registry = MetricsRegistry()
            registry.counter("fleet.test.n").inc(n)
            return {
                "format": fleet.FLEET_FORMAT,
                "metrics": registry.snapshot(),
            }

        merged = merge_fleet_documents([doc(2), None, doc(5)])
        assert merged["sources"] == 2
        assert merged["merged"]["counters"]["fleet.test.n"]["total"] == 7


# ---------------------------------------------------------------------------
# Prometheus exposition + validator.
# ---------------------------------------------------------------------------


class TestPrometheusText:
    def sample_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("fleet.coordinator.jobs_completed").inc(3)
        registry.counter(
            labeled("fleet.store.ops", op="get", result="hit")
        ).inc(7)
        registry.gauge("fleet.coordinator.queue_depth").set(5)
        h = registry.histogram("fleet.worker.job_wall_ns", bounds=(10, 100))
        for value in (5, 50, 500):
            h.observe(value)
        return registry.snapshot()

    def test_renders_and_validates(self):
        text = prometheus_text(self.sample_snapshot())
        assert validate_prometheus_text(text) == []
        assert "# TYPE fleet_coordinator_jobs_completed counter" in text
        assert "fleet_coordinator_jobs_completed 3" in text

    def test_labeled_names_become_real_labels(self):
        text = prometheus_text(self.sample_snapshot())
        assert 'fleet_store_ops{op="get",result="hit"} 7' in text

    def test_gauge_emits_value_and_peak(self):
        text = prometheus_text(self.sample_snapshot())
        assert "fleet_coordinator_queue_depth 5" in text
        assert "fleet_coordinator_queue_depth_peak 5" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = prometheus_text(self.sample_snapshot())
        lines = [
            line
            for line in text.splitlines()
            if line.startswith("fleet_worker_job_wall_ns_bucket")
        ]
        assert lines == [
            'fleet_worker_job_wall_ns_bucket{le="10"} 1',
            'fleet_worker_job_wall_ns_bucket{le="100"} 2',
            'fleet_worker_job_wall_ns_bucket{le="+Inf"} 3',
        ]
        assert "fleet_worker_job_wall_ns_count 3" in text
        assert "fleet_worker_job_wall_ns_sum 555" in text

    def test_dots_sanitized_out_of_family_names(self):
        text = prometheus_text(self.sample_snapshot())
        assert "fleet.coordinator" not in text

    def test_empty_snapshot_renders_empty_exposition(self):
        text = prometheus_text(MetricsRegistry().snapshot())
        assert validate_prometheus_text(text) == []

    def test_active_handle_is_the_default_snapshot(self):
        with fleet_capture() as f:
            f.inc("fleet.test.live", 2)
            assert "fleet_test_live 2" in prometheus_text()

    def test_validator_flags_duplicate_series(self):
        problems = validate_prometheus_text("a_metric 1\na_metric 2\n")
        assert any("duplicate" in p for p in problems)

    def test_validator_flags_non_cumulative_buckets(self):
        text = (
            'm_bucket{le="10"} 5\n'
            'm_bucket{le="100"} 3\n'
        )
        problems = validate_prometheus_text(text)
        assert any("not cumulative" in p for p in problems)

    def test_validator_flags_bad_type_and_garbage(self):
        problems = validate_prometheus_text("# TYPE foo banana\n")
        assert any("TYPE" in p for p in problems)
        problems = validate_prometheus_text("!!! not a sample\n")
        assert any("unparseable" in p for p in problems)
        problems = validate_prometheus_text("a_metric one\n")
        assert any("non-numeric" in p for p in problems)


# ---------------------------------------------------------------------------
# Coordinator instrumentation: counters, timelines, the fleet block.
# ---------------------------------------------------------------------------


class TestCoordinatorTelemetry:
    def test_happy_path_timeline_and_counters(self, clocked):
        coordinator, clock = clocked
        with fleet_capture() as f:
            status = coordinator.submit(make_spec(seeds=(0, 1)))
            assert f.counter_value("fleet.coordinator.campaigns_submitted") == 1
            assert f.counter_value("fleet.coordinator.jobs_created") == 1
            assert (
                f.snapshot()["gauges"]["fleet.coordinator.queue_depth"]["value"]
                == 1
            )
            worker = coordinator.register()
            clock.advance(0.5)
            job = coordinator.lease(worker)
            clock.advance(2.0)
            coordinator.complete(
                worker,
                job["job"],
                wire_outcomes([0, 1]),
                exec_info={"wall_s": 2.0, "heartbeat_failures": 0},
            )
            assert f.counter_value("fleet.coordinator.leases") == 1
            assert f.counter_value("fleet.coordinator.jobs_completed") == 1
            snap = f.snapshot()
            assert (
                snap["gauges"]["fleet.coordinator.queue_depth"]["value"] == 0
            )
            lease_hist = snap["histograms"][
                "fleet.coordinator.lease_latency_ns"
            ]
            assert lease_hist["count"] == 1
            assert lease_hist["max"] == pytest.approx(0.5e9)
            duration = snap["histograms"]["fleet.coordinator.job_duration_ns"]
            assert duration["max"] == pytest.approx(2.0e9)

        report = coordinator.report(status["campaign"])
        (described,) = report["jobs"]
        events = [event["event"] for event in described["timeline"]]
        assert events == ["queued", "leased", "done"]
        assert described["exec"]["wall_s"] == 2.0
        assert report["submitted_at"] == 1000.0

    def test_worker_death_stamps_requeue_and_counts(self, clocked):
        coordinator, clock = clocked
        with fleet_capture() as f:
            coordinator.submit(make_spec(seeds=(0, 1)))
            w1, w2 = coordinator.register(), coordinator.register()
            job = coordinator.lease(w1)
            clock.advance(5.1)  # TTL 5.0 passes with no heartbeat
            assert coordinator.lease(w2) is None  # reaped, backoff pending
            clock.advance(1.1)  # retry_backoff_s elapsed
            retried = coordinator.lease(w2)
            assert retried["job"] == job["job"]
            assert f.counter_value("fleet.coordinator.worker_deaths") == 1
            assert f.counter_value("fleet.coordinator.requeues") == 1
            # The dead worker's late report is stale.
            reply = coordinator.complete(w1, job["job"], wire_outcomes([0, 1]))
            assert not reply["ok"]
            assert f.counter_value("fleet.coordinator.stale_reports") == 1
        timeline = coordinator._jobs[job["job"]].timeline
        kinds = [event["event"] for event in timeline]
        assert kinds == ["queued", "leased", "requeued", "leased"]
        assert "lease expired" in timeline[2]["reason"]

    def test_reported_failure_counts_retry(self, clocked):
        coordinator, clock = clocked
        with fleet_capture() as f:
            coordinator.submit(make_spec(seeds=(0, 1)))
            worker = coordinator.register()
            job = coordinator.lease(worker)
            coordinator.fail(worker, job["job"], "boom")
            assert f.counter_value("fleet.coordinator.retries") == 1
        timeline = coordinator._jobs[job["job"]].timeline
        assert timeline[-1]["event"] == "requeued"
        assert timeline[-1]["reason"] == "boom"

    def test_terminal_failure_stamps_failed(self, clocked):
        coordinator, clock = clocked
        with fleet_capture() as f:
            status = coordinator.submit(make_spec(seeds=(0, 1)))
            worker = coordinator.register()
            for attempt in range(3):  # max_attempts=3
                clock.advance(10.0)  # clear any requeue backoff
                job = coordinator.lease(worker)
                assert job is not None
                coordinator.fail(worker, job["job"], f"boom {attempt}")
            assert f.counter_value("fleet.coordinator.jobs_failed") == 1
        timeline = coordinator._jobs[job["job"]].timeline
        assert timeline[-1]["event"] == "failed"
        assert coordinator.status(status["campaign"])["status"] == "done"

    def test_cache_hits_count_as_seeds_cached(self, clocked, tmp_path):
        coordinator, _ = clocked
        spec = make_spec(seeds=(0, 1))
        with fleet_capture() as f:
            status = coordinator.submit(spec)
            worker = coordinator.register()
            job = coordinator.lease(worker)
            outcomes = [
                {
                    "seed": seed,
                    "encoding": encoding,
                    "payload": payload,
                    "error": None,
                    "cached": False,
                    "elapsed_s": 0.0,
                }
                for seed in job["seeds"]
                for encoding, payload in [_encode_value(f"v-{seed}")]
            ]
            coordinator.complete(worker, job["job"], outcomes)
            # Resubmit: every seed is now a store hit.
            coordinator.submit(spec)
            assert f.counter_value("fleet.coordinator.seeds_cached") == 2

    def test_status_reports_rates_and_eta(self, clocked):
        coordinator, clock = clocked
        status = coordinator.submit(make_spec(seeds=(0, 1, 2, 3)))
        campaign = status["campaign"]
        assert status["queue_depth"] == 2
        assert status["leased"] == 0
        assert status["eta_s"] is None  # nothing computed yet: no rate
        worker = coordinator.register()
        job = coordinator.lease(worker)
        clock.advance(2.0)
        coordinator.complete(worker, job["job"], wire_outcomes(job["seeds"]))
        mid = coordinator.status(campaign)
        assert mid["seeds_per_s"] == pytest.approx(1.0)
        assert mid["eta_s"] == pytest.approx(2.0)
        job = coordinator.lease(worker)
        clock.advance(2.0)
        coordinator.complete(worker, job["job"], wire_outcomes(job["seeds"]))
        done = coordinator.status(campaign)
        assert done["status"] == "done"
        assert done["eta_s"] == 0.0
        assert done["elapsed_s"] == pytest.approx(4.0)

    def test_report_embeds_merged_fleet_block(self, clocked):
        coordinator, clock = clocked
        with fleet_capture() as f:
            status = coordinator.submit(make_spec(seeds=(0, 1)))
            worker = coordinator.register()
            job = coordinator.lease(worker)
            worker_registry = MetricsRegistry()
            worker_registry.counter("fleet.worker.jobs_executed").inc()
            telemetry = {
                "format": fleet.FLEET_FORMAT,
                "host": "remote-host",
                "pid": 4242,
                "enabled": True,
                "metrics": worker_registry.snapshot(),
            }
            coordinator.complete(
                worker, job["job"], wire_outcomes([0, 1]), telemetry=telemetry
            )
            block = coordinator.report(status["campaign"])["fleet"]
            assert block["format"] == fleet.FLEET_FORMAT
            assert block["sources"] == 2  # coordinator + one worker
            assert block["workers"][worker]["host"] == "remote-host"
            merged = block["merged"]
            assert (
                merged["counters"]["fleet.worker.jobs_executed"]["total"] == 1
            )
            assert (
                merged["counters"]["fleet.coordinator.jobs_completed"]["total"]
                == 1
            )

    def test_stale_report_still_updates_worker_telemetry(self, clocked):
        coordinator, clock = clocked
        with fleet_capture():
            status = coordinator.submit(make_spec(seeds=(0, 1)))
            w1, w2 = coordinator.register(), coordinator.register()
            job = coordinator.lease(w1)
            clock.advance(6.2)
            coordinator.lease(w2)
            telemetry = {
                "format": fleet.FLEET_FORMAT,
                "metrics": MetricsRegistry().snapshot(),
            }
            reply = coordinator.complete(
                w1, job["job"], wire_outcomes([0, 1]), telemetry=telemetry
            )
            assert not reply["ok"]
            block = coordinator.report(status["campaign"])["fleet"]
            assert w1 in block["workers"]  # last words of a dying worker


# ---------------------------------------------------------------------------
# The fleet trace.
# ---------------------------------------------------------------------------


class TestFleetTrace:
    def run_campaign(self, coordinator, clock, with_requeue=False):
        status = coordinator.submit(make_spec(seeds=(0, 1, 2)))
        w1, w2 = coordinator.register(), coordinator.register()
        clock.advance(0.1)
        first = coordinator.lease(w1)
        if with_requeue:
            clock.advance(5.1)  # w1 dies: TTL passes without a heartbeat
            second = coordinator.lease(w2)  # w2 gets the *other* job
            clock.advance(1.1)  # backoff elapsed: the orphan is runnable
            retried = coordinator.lease(w2)
            assert retried["job"] == first["job"]
            clock.advance(1.0)
            coordinator.complete(
                w2,
                retried["job"],
                wire_outcomes(retried["seeds"]),
                exec_info={"wall_s": 1.0, "heartbeat_failures": 0},
            )
            clock.advance(0.5)
            coordinator.complete(
                w2, second["job"], wire_outcomes(second["seeds"])
            )
            return coordinator.report(status["campaign"])
        clock.advance(1.0)
        coordinator.complete(
            w1,
            first["job"],
            wire_outcomes(first["seeds"]),
            exec_info={"wall_s": 1.0, "heartbeat_failures": 0},
        )
        second = coordinator.lease(w2)
        clock.advance(0.5)
        coordinator.complete(w2, second["job"], wire_outcomes(second["seeds"]))
        return coordinator.report(status["campaign"])

    def test_trace_validates_and_has_tracks(self, clocked):
        coordinator, clock = clocked
        report = self.run_campaign(coordinator, clock)
        events = fleet_trace_events(report)
        assert validate_trace_data(events) == []
        names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert "coordinator queue" in names
        assert any(name.startswith("worker ") for name in names)

    def test_pending_spans_on_queue_track(self, clocked):
        coordinator, clock = clocked
        report = self.run_campaign(coordinator, clock)
        queue_spans = [
            event
            for event in fleet_trace_events(report)
            if event["ph"] == "X" and event["name"].endswith("pending")
        ]
        assert len(queue_spans) == 2  # one per job
        assert all(event["tid"] == 1 for event in queue_spans)
        # First job waited 0.1 s from submission to its lease.
        assert queue_spans[0]["dur"] == pytest.approx(0.1e6)

    def test_worker_spans_carry_attempt_and_exec(self, clocked):
        coordinator, clock = clocked
        report = self.run_campaign(coordinator, clock)
        attempts = [
            event
            for event in fleet_trace_events(report)
            if event["ph"] == "X" and "attempt" in event["name"]
        ]
        assert len(attempts) == 2
        done = [e for e in attempts if e["args"].get("exec")]
        assert done and done[0]["args"]["exec"]["wall_s"] == 1.0
        assert done[0]["dur"] == pytest.approx(1.0e6)

    def test_requeue_emits_instant_and_second_attempt(self, clocked):
        coordinator, clock = clocked
        report = self.run_campaign(coordinator, clock, with_requeue=True)
        events = fleet_trace_events(report)
        assert validate_trace_data(events) == []
        requeues = [e for e in events if e["name"].startswith("requeue ")]
        assert len(requeues) == 1
        assert requeues[0]["ph"] == "i"
        attempts = [
            e["args"]["attempt"]
            for e in events
            if e["ph"] == "X" and "attempt" in e["name"]
        ]
        assert 2 in attempts  # the re-lease ran as attempt 2

    def test_unfinished_job_renders_as_instants(self, clocked):
        coordinator, clock = clocked
        status = coordinator.submit(make_spec(seeds=(0, 1, 2)))
        worker = coordinator.register()
        coordinator.lease(worker)  # leased, never completed
        events = fleet_trace_events(coordinator.report(status["campaign"]))
        assert validate_trace_data(events) == []
        instants = [e for e in events if e["ph"] == "i"]
        # One executing instant (open lease) + one pending instant.
        assert {e["name"].split()[-1] for e in instants} == {
            "executing",
            "pending",
        }

    def test_write_fleet_trace_file(self, clocked, tmp_path):
        coordinator, clock = clocked
        report = self.run_campaign(coordinator, clock)
        path = write_fleet_trace(report, tmp_path / "fleet-trace.json")
        document = json.loads(path.read_text())
        assert validate_trace_data(document) == []
        assert document["otherData"]["campaign"] == report["campaign"]

    def test_empty_report_still_validates(self):
        events = fleet_trace_events({"campaign": "c0", "jobs": []})
        assert validate_trace_data(events) == []


# ---------------------------------------------------------------------------
# Worker heartbeat failures must never be silent (satellite: heartbeat).
# ---------------------------------------------------------------------------


class FlakyHeartbeatClient:
    """A coordinator client whose coordinator 'dies' on heartbeats."""

    def __init__(self):
        self.heartbeats = 0
        self.completed = []

    def register(self, info):
        return "w-test"

    def heartbeat(self, worker_id, job_id):
        self.heartbeats += 1
        raise OSError("connection refused")  # coordinator is gone

    def complete(self, worker_id, job_id, outcomes, exec_info=None, telemetry=None):
        self.completed.append(
            {
                "job": job_id,
                "outcomes": outcomes,
                "exec": exec_info,
                "telemetry": telemetry,
            }
        )
        return {"ok": True}

    def fail(self, worker_id, job_id, error):
        return {"ok": True}


class TestHeartbeatFailures:
    def run_job_with_dead_coordinator(self, caplog):
        client = FlakyHeartbeatClient()

        def slow_execute(job):
            time.sleep(0.15)  # long enough for >= 1 heartbeat tick
            return wire_outcomes(job["seeds"])

        worker = Worker(client, execute=slow_execute, info={"host": "h1"})
        worker.worker_id = "w-test"
        job = {"job": "c1-j0", "seeds": [0, 1], "lease_ttl_s": 0.06}
        with caplog.at_level(logging.WARNING, logger="repro.service.worker"):
            assert worker.run_one(job)
        return client, worker

    def test_failure_is_counted_logged_and_reported(self, caplog):
        with fleet_capture() as f:
            client, worker = self.run_job_with_dead_coordinator(caplog)
            assert worker.heartbeat_failures >= 1
            assert worker.heartbeat_failures == client.heartbeats
            assert (
                f.counter_value("fleet.worker.heartbeat_failures")
                == worker.heartbeat_failures
            )
        warnings = [
            record
            for record in caplog.records
            if record.name == "repro.service.worker"
            and record.levelno == logging.WARNING
        ]
        assert warnings
        assert "heartbeat for job c1-j0 failed" in warnings[0].getMessage()
        # The failure count surfaces in the completion's exec info...
        (completion,) = client.completed
        assert (
            completion["exec"]["heartbeat_failures"]
            == worker.heartbeat_failures
        )
        # ...and in the worker's shipped telemetry document.
        counters = completion["telemetry"]["metrics"]["counters"]
        assert (
            counters["fleet.worker.heartbeat_failures"]
            == worker.heartbeat_failures
        )

    def test_heartbeat_thread_survives_without_fleet(self, caplog):
        # Telemetry off: the counter and log line still work.
        fleet.disable()
        client, worker = self.run_job_with_dead_coordinator(caplog)
        assert worker.heartbeat_failures >= 1
        assert client.completed[0]["telemetry"] is None
        assert any(
            "heartbeat for job" in record.getMessage()
            for record in caplog.records
        )

    def test_exec_info_reaches_the_job_record(self, clocked):
        coordinator, clock = clocked
        status = coordinator.submit(make_spec(seeds=(0, 1)))
        worker = coordinator.register()
        job = coordinator.lease(worker)
        coordinator.complete(
            worker,
            job["job"],
            wire_outcomes([0, 1]),
            exec_info={"wall_s": 0.1, "heartbeat_failures": 3},
        )
        report = coordinator.report(status["campaign"])
        assert report["jobs"][0]["exec"]["heartbeat_failures"] == 3


# ---------------------------------------------------------------------------
# Live service: /metrics under concurrent scraping (satellite: race smoke).
# ---------------------------------------------------------------------------


class TestLiveServiceTelemetry:
    def test_concurrent_metrics_and_status_scrapes(self, tmp_path):
        spec = make_spec(seeds=(0, 1, 2, 3, 4, 5), frames=30)
        problems: list[str] = []
        metric_series: list[list[int]] = [[], []]  # one list per scraper
        status_series: list[int] = []
        stop = threading.Event()

        # Earlier tests may have run campaigns on the process-global
        # handle; start from a zeroed registry so absolute counter
        # values below are meaningful.
        fleet.enable(fresh=True)

        with LocalService(
            tmp_path,
            workers=2,
            config=CoordinatorConfig(chunk_size=2),
        ) as service:
            campaign = service.client.submit(spec)["campaign"]

            def scrape_metrics(into):
                while not stop.is_set():
                    text = service.client.metrics_text()
                    bad = validate_prometheus_text(text)
                    if bad:
                        problems.extend(bad)
                        return
                    for line in text.splitlines():
                        if line.startswith(
                            "fleet_coordinator_jobs_completed "
                        ):
                            into.append(int(line.split()[1]))
                    time.sleep(0.005)

            def scrape_status():
                while not stop.is_set():
                    status = service.client.status(campaign)
                    if status["status"] not in ("running", "done"):
                        problems.append(f"bad status {status!r}")
                        return
                    status_series.append(status["jobs_done"])
                    time.sleep(0.005)

            threads = [
                threading.Thread(target=scrape_metrics, args=(metric_series[0],)),
                threading.Thread(target=scrape_metrics, args=(metric_series[1],)),
                threading.Thread(target=scrape_status),
            ]
            for thread in threads:
                thread.start()
            result = service.client.wait(campaign, timeout_s=120.0)
            # Let the scrapers observe the final state, then stop them.
            time.sleep(0.05)
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)

            assert problems == []
            assert result["status"] == "done"
            # Counters scraped mid-flight are monotone non-decreasing
            # within each scraper's own sample series.  The threads may
            # not have sampled the final state before stopping, so take
            # one authoritative post-completion scrape per series.
            final = None
            for line in service.client.metrics_text().splitlines():
                if line.startswith("fleet_coordinator_jobs_completed "):
                    final = int(line.split()[1])
            assert final == 3  # ceil(6 / chunk 2)
            for series in metric_series:
                assert series + [final] == sorted(series + [final])
            assert status_series == sorted(status_series)

            # The HTTP exposition itself is valid Prometheus text with
            # the declared content type semantics (non-JSON endpoint).
            text = service.client.metrics_text()
            assert validate_prometheus_text(text) == []
            assert "fleet_worker_jobs_executed" in text

            report = service.client.report(campaign)
            assert report["fleet"]["sources"] >= 2  # coordinator + workers
            events = fleet_trace_events(report)
            assert validate_trace_data(events) == []


# ---------------------------------------------------------------------------
# The headline invariant: fleet telemetry perturbs nothing.
# ---------------------------------------------------------------------------


class TestZeroPerturbation:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_det_fingerprints_identical_with_fleet_on(self, seed):
        from repro.apps.brake.det import run_det_brake_assistant
        from repro.explore import calibration_scenario

        scenario = calibration_scenario(20, deterministic_camera=True)
        fleet.disable()
        baseline = run_det_brake_assistant(seed, scenario)
        with fleet_capture() as f:
            f.inc("fleet.test.noise")  # a live registry, actually used
            observed = run_det_brake_assistant(seed, scenario)
        assert dict(baseline.trace_fingerprints) == dict(
            observed.trace_fingerprints
        )

    def test_nondet_fingerprints_identical_with_fleet_on(self):
        from repro.apps.brake.nondet import run_nondet_brake_assistant
        from repro.explore import calibration_scenario

        scenario = calibration_scenario(20)
        fleet.disable()
        baseline = run_nondet_brake_assistant(3, scenario)
        with fleet_capture():
            observed = run_nondet_brake_assistant(3, scenario)
        assert dict(baseline.trace_fingerprints) == dict(
            observed.trace_fingerprints
        )

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        variant=st.sampled_from(["det", "nondet"]),
        faulted=st.booleans(),
    )
    def test_sweep_results_byte_identical_fleet_on_vs_off(
        self, seeds, variant, faulted
    ):
        faults = (
            FaultPlan.camera_faults(
                seed=1, drop=0.05, duplicate=0.02, label="fleet-faults"
            )
            if faulted
            else None
        )
        spec = make_spec(
            seeds=seeds, variant=variant, frames=15, faults=faults
        )
        fleet.disable()
        baseline = local_reference(spec)
        with fleet_capture():
            observed = local_reference(spec)
        assert len(baseline) == len(observed)
        for off, on in zip(baseline, observed):
            assert pickle.dumps(off) == pickle.dumps(on)

    @pytest.mark.parametrize(
        "spec",
        [
            pytest.param(make_spec(seeds=(0, 1, 2, 3, 4)), id="det"),
            pytest.param(
                make_spec(seeds=(3, 11, 7), variant="nondet"), id="nondet"
            ),
            pytest.param(
                make_spec(
                    seeds=(0, 1, 2, 5),
                    faults=FaultPlan.camera_faults(
                        seed=1,
                        drop=0.05,
                        duplicate=0.02,
                        label="fleet-faults",
                    ),
                ),
                id="faulted",
            ),
        ],
    )
    def test_service_byte_identical_with_fleet_enabled(self, spec, tmp_path):
        fleet.disable()
        reference = local_reference(spec)
        # LocalService enables fleet telemetry by default (entry-point
        # policy); the campaign must still merge byte-identical.
        with LocalService(
            tmp_path, workers=2, config=CoordinatorConfig(chunk_size=2)
        ) as service:
            assert fleet.ACTIVE.enabled
            served = service.run_spec(spec)
            text = service.client.metrics_text()
        fleet.disable()
        assert validate_prometheus_text(text) == []
        assert len(served) == len(reference)
        for value, expected in zip(served, reference):
            assert pickle.dumps(value) == pickle.dumps(expected)

    def test_service_respects_telemetry_optout(self, tmp_path, monkeypatch):
        monkeypatch.setenv(fleet.FLEET_ENV, "0")
        fleet.disable()
        spec = make_spec(seeds=(0, 1, 2))
        with LocalService(
            tmp_path, workers=1, config=CoordinatorConfig(chunk_size=2)
        ) as service:
            assert not fleet.ACTIVE.enabled
            served = service.run_spec(spec)
            report = service.client.report(
                service.client.campaigns()[-1]["campaign"]
            )
        assert report["fleet"]["coordinator"]["enabled"] is False
        assert len(served) == 3
