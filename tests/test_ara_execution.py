"""Unit tests for the execution manager."""

import pytest

from repro.ara import ExecutionManager, ProcessState
from repro.errors import AraError
from repro.sim import World
from repro.time import MS


class TestStartup:
    def test_dependencies_start_first(self):
        world = World(0)
        manager = ExecutionManager(world)
        started = []
        manager.register("app", lambda: started.append(("app", world.now)),
                         dependencies=("daemon",), start_offset_ns=5 * MS)
        manager.register("daemon", lambda: started.append(("daemon", world.now)),
                         start_offset_ns=2 * MS)
        manager.start_all()
        world.run_to_completion()
        assert started == [("daemon", 2 * MS), ("app", 7 * MS)]

    def test_chain_of_dependencies(self):
        world = World(0)
        manager = ExecutionManager(world)
        started = []
        for name, deps in (("c", ("b",)), ("b", ("a",)), ("a", ())):
            manager.register(
                name,
                lambda name=name: started.append(name),
                dependencies=deps,
                start_offset_ns=1 * MS,
            )
        manager.start_all()
        world.run_to_completion()
        assert started == ["a", "b", "c"]

    def test_cycle_detected(self):
        world = World(0)
        manager = ExecutionManager(world)
        manager.register("a", lambda: None, dependencies=("b",))
        manager.register("b", lambda: None, dependencies=("a",))
        with pytest.raises(AraError):
            manager.start_all()

    def test_unknown_dependency_detected(self):
        world = World(0)
        manager = ExecutionManager(world)
        manager.register("a", lambda: None, dependencies=("ghost",))
        with pytest.raises(AraError):
            manager.start_all()

    def test_duplicate_registration_rejected(self):
        manager = ExecutionManager(World(0))
        manager.register("a", lambda: None)
        with pytest.raises(AraError):
            manager.register("a", lambda: None)


class TestStates:
    def test_state_transitions(self):
        world = World(0)
        manager = ExecutionManager(world)
        manager.register("a", lambda: None)
        assert manager.state("a") is ProcessState.IDLE
        manager.start_all()
        world.run_to_completion()
        assert manager.state("a") is ProcessState.STARTING
        manager.report_running("a")
        assert manager.state("a") is ProcessState.RUNNING
        manager.report_terminated("a")
        assert manager.state("a") is ProcessState.TERMINATED
