"""SOME/IP SD under loss: find_blocking timeout, retry recovery, cleanup."""

from repro.faults import FaultPlan, LinkFault, install_fault_plan
from repro.network import ConstantLatency, NetworkInterface, Switch, SwitchConfig
from repro.sim import World
from repro.sim.platform import CALM
from repro.someip import SdConfig, SdDaemon
from repro.time import MS, SEC, US

SERVICE = 0x7700


def _world_with_sd(sd_config: SdConfig | None = None, plan: FaultPlan | None = None):
    world = World(0)
    switch = Switch(
        world.sim, world.rng.stream("net"),
        SwitchConfig(latency=ConstantLatency(100 * US), ns_per_byte=0),
    )
    world.attach_network(switch)
    daemons = {}
    for host in ("server", "client"):
        platform = world.add_platform(host, CALM)
        daemons[host] = SdDaemon(
            platform, NetworkInterface(platform, switch), sd_config
        )
    injector = install_fault_plan(world, plan) if plan is not None else None
    return world, daemons, injector


def _find(world: World, daemon: SdDaemon, timeout_ns: int) -> dict:
    """Spawn a thread running find_blocking; returns the result box."""
    box = {}

    def lookup():
        box["entry"] = yield from daemon.find_blocking(SERVICE, 1, timeout_ns)

    daemon.platform.spawn("lookup", lookup())
    return box


class TestFindBlocking:
    def test_times_out_when_nothing_is_offered(self):
        world, daemons, _ = _world_with_sd()
        box = _find(world, daemons["client"], timeout_ns=300 * MS)
        world.run_for(1 * SEC)
        assert box["entry"] is None

    def test_cached_offer_expires_after_ttl(self):
        config = SdConfig(ttl_ns=200 * MS, cyclic_offer_period_ns=100 * SEC)
        world, daemons, _ = _world_with_sd(config)
        daemons["server"].offer(SERVICE, 1, 1, 40000)
        world.run_for(50 * MS)
        assert daemons["client"].find(SERVICE, 1) is not None
        # No cyclic refresh within the window: the cache entry lapses.
        world.run_for(400 * MS)
        assert daemons["client"].find(SERVICE, 1) is None

    def test_find_retries_recover_from_lossy_startup(self):
        # Every SD frame in the first 200 ms is lost (drop fault on port
        # 30490).  The initial OFFER and FIND vanish; the exponential
        # FIND retransmission (50, 150, 350 ms) lands one query after
        # the window closes and discovery completes.
        plan = FaultPlan(
            seed=1,
            link_faults=(
                LinkFault(dst_port=30490, drop_probability=1.0, end_ns=200 * MS),
            ),
        )
        config = SdConfig(
            cyclic_offer_period_ns=100 * SEC, find_retry_backoff_ns=50 * MS
        )
        world, daemons, injector = _world_with_sd(config, plan)
        daemons["server"].offer(SERVICE, 1, 1, 40000)
        box = _find(world, daemons["client"], timeout_ns=3 * SEC)
        world.run_for(4 * SEC)
        assert box["entry"] is not None
        assert box["entry"].host == "server"
        assert daemons["client"].find_retries > 0
        assert injector.counters["drop"] > 0

    def test_total_loss_means_a_clean_timeout(self):
        plan = FaultPlan(
            seed=1, link_faults=(LinkFault(dst_port=30490, drop_probability=1.0),)
        )
        config = SdConfig(
            cyclic_offer_period_ns=100 * SEC, find_retry_backoff_ns=50 * MS
        )
        world, daemons, _ = _world_with_sd(config, plan)
        daemons["server"].offer(SERVICE, 1, 1, 40000)
        box = _find(world, daemons["client"], timeout_ns=1 * SEC)
        world.run_for(2 * SEC)
        assert box["entry"] is None
        client = daemons["client"]
        assert client.find_retries == client.config.find_max_retries


class TestStopOffer:
    def test_clears_subscribers_and_remote_caches(self):
        world, daemons, _ = _world_with_sd(
            SdConfig(cyclic_offer_period_ns=100 * SEC)
        )
        server = daemons["server"]
        server.offer(SERVICE, 1, 1, 40000)
        key = (SERVICE, 1, 0x8001)
        server._subscribers[key] = {("client", 40001): 10**15}
        world.run_for(50 * MS)
        assert daemons["client"].find(SERVICE, 1) is not None
        assert server.subscribers(*key) == [("client", 40001)]

        server.stop_offer(SERVICE, 1)
        assert server.subscribers(*key) == []
        assert key not in server._subscribers
        # The TTL-0 broadcast purges the peer's cache too.
        world.run_for(50 * MS)
        assert daemons["client"].find(SERVICE, 1) is None
