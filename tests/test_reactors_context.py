"""Edge-case tests for reaction contexts, values and scheduling."""

import pytest

from repro.errors import SchedulingError
from repro.reactors import Environment, Reactor
from repro.sim import World
from repro.sim.platform import CALM
from repro.time import MS, Tag


class TestContextTime:
    def test_fast_mode_physical_equals_logical(self):
        env = Environment(timeout=20 * MS)
        reactor = Reactor("r", env)
        tick = reactor.timer("tick", offset=5 * MS, period=10 * MS)
        observations = []

        def observe(ctx):
            observations.append((ctx.logical_time, ctx.physical_time(), ctx.lag()))

        reactor.reaction("observe", triggers=[tick], body=observe)
        env.execute()
        for logical, physical, lag in observations:
            assert physical == logical
            assert lag == 0

    def test_sim_mode_lag_reflects_execution_cost(self):
        world = World(0)
        platform = world.add_platform("p", CALM)
        env = Environment(timeout=50 * MS)
        reactor = Reactor("r", env)
        tick = reactor.timer("tick", offset=10 * MS)
        lags = []
        reactor.reaction("heavy", triggers=[tick], body=lambda ctx: None,
                         exec_time=7 * MS)
        reactor.reaction("observe", triggers=[tick],
                         body=lambda ctx: lags.append(ctx.lag()))
        env.start(platform)
        world.run_for(1000 * MS)
        assert lags and lags[0] >= 7 * MS


class TestValues:
    def test_same_reactor_later_reaction_overwrites_port(self):
        env = Environment(timeout=0)
        writer = Reactor("writer", env)
        out = writer.output("out")
        start = writer.timer("start", offset=0)
        writer.reaction("first", triggers=[start], effects=[out],
                        body=lambda ctx: ctx.set(out, "first"))
        writer.reaction("second", triggers=[start], effects=[out],
                        body=lambda ctx: ctx.set(out, "second"))
        sink = Reactor("sink", env)
        inp = sink.input("inp")
        seen = []
        sink.reaction(
            "read", triggers=[inp], body=lambda ctx: seen.append(ctx.get(inp))
        )
        env.connect(out, inp)
        env.execute()
        # The downstream reaction runs after *both* writers (APG) and
        # sees the last value; it is triggered once per tag.
        assert seen == ["second"]

    def test_absent_port_reads_none(self):
        env = Environment(timeout=0)
        source = Reactor("source", env)
        out = source.output("out")
        start = source.timer("start", offset=0)
        source.reaction("noop", triggers=[start], effects=[out],
                        body=lambda ctx: None)  # never sets out
        sink = Reactor("sink", env)
        inp = sink.input("inp")
        probe = sink.timer("probe", offset=0)
        observations = []
        sink.reaction(
            "peek", triggers=[probe], sources=[inp],
            body=lambda ctx: observations.append(
                (ctx.is_present(inp), ctx.get(inp))
            ),
        )
        env.connect(out, inp)
        env.execute()
        assert observations == [(False, None)]

    def test_delayed_connection_carries_value(self):
        env = Environment(timeout=20 * MS)
        source = Reactor("source", env)
        out = source.output("out")
        start = source.timer("start", offset=0)
        source.reaction("emit", triggers=[start], effects=[out],
                        body=lambda ctx: ctx.set(out, "payload"))
        sink = Reactor("sink", env)
        inp = sink.input("inp")
        received = []
        sink.reaction("recv", triggers=[inp],
                      body=lambda ctx: received.append((ctx.tag, ctx.get(inp))))
        env.connect(out, inp, after=7 * MS)
        env.execute()
        assert received == [(Tag(7 * MS, 0), "payload")]

    def test_values_cleared_between_tags(self):
        env = Environment(timeout=25 * MS)
        source = Reactor("source", env)
        out = source.output("out")
        tick = source.timer("tick", offset=0, period=10 * MS)
        count = [0]

        def emit(ctx):
            count[0] += 1
            if count[0] == 1:
                ctx.set(out, "only-once")

        source.reaction("emit", triggers=[tick], effects=[out], body=emit)
        sink = Reactor("sink", env)
        inp = sink.input("inp")
        probe = sink.timer("probe", offset=0, period=10 * MS)
        observations = []
        sink.reaction("peek", triggers=[probe], sources=[inp],
                      body=lambda ctx: observations.append(ctx.is_present(inp)))
        env.connect(out, inp)
        env.execute()
        assert observations == [True, False, False]


class TestSchedulingEdgeCases:
    def test_physical_action_schedulable_from_reaction(self):
        """Reactions may schedule physical actions; the tag comes from
        physical time (here fast mode: equal to logical)."""
        env = Environment(timeout=10 * MS)
        reactor = Reactor("r", env)
        action = reactor.physical_action("sensor", min_delay=2 * MS)
        start = reactor.timer("start", offset=0)
        fired = []
        reactor.reaction("kick", triggers=[start], effects=[action],
                         body=lambda ctx: ctx.schedule(action, "x"))
        reactor.reaction("on_action", triggers=[action],
                         body=lambda ctx: fired.append(ctx.tag))
        env.execute()
        assert fired and fired[0].time == 2 * MS

    def test_negative_extra_delay_rejected(self):
        env = Environment(timeout=10 * MS)
        reactor = Reactor("r", env)
        action = reactor.logical_action("act")
        start = reactor.timer("start", offset=0)
        errors = []

        def kick(ctx):
            try:
                ctx.schedule(action, extra_delay=-1)
            except SchedulingError:
                errors.append(True)

        reactor.reaction("kick", triggers=[start], effects=[action], body=kick)
        reactor.reaction("sink", triggers=[action], body=lambda ctx: None)
        env.execute()
        assert errors == [True]

    def test_invocation_counter(self):
        env = Environment(timeout=45 * MS)
        reactor = Reactor("r", env)
        tick = reactor.timer("tick", offset=0, period=10 * MS)
        reaction = reactor.reaction("count", triggers=[tick], body=lambda ctx: None)
        env.execute()
        assert reaction.invocations == 5

    def test_exec_time_callable_receives_rng(self):
        world = World(0)
        platform = world.add_platform("p", CALM)
        env = Environment(timeout=10 * MS)
        reactor = Reactor("r", env)
        start = reactor.timer("start", offset=0)
        sampled = []

        def cost_model(rng):
            value = rng.randint(1 * MS, 2 * MS)
            sampled.append(value)
            return value

        done = []
        reactor.reaction("work", triggers=[start],
                         body=lambda ctx: done.append(platform.local_now()),
                         exec_time=cost_model)
        env.start(platform)
        world.run_for(1000 * MS)
        assert len(sampled) == 1
        assert done[0] >= sampled[0]

    def test_timer_validation(self):
        env = Environment()
        reactor = Reactor("r", env)
        with pytest.raises(ValueError):
            reactor.timer("bad", offset=-1)
        with pytest.raises(ValueError):
            reactor.timer("bad2", offset=0, period=0)
        with pytest.raises(ValueError):
            reactor.logical_action("bad3", min_delay=-1)
