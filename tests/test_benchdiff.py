"""Tests for ``repro.harness.benchdiff`` — the perf-trajectory gate."""

import json

from repro.harness.benchdiff import (
    compare_bench,
    compare_dirs,
    is_timing_field,
    render_bench_diff,
)


class TestTimingClassification:
    def test_timing_fields(self):
        for key in (
            "wall_time_s", "latency_mean_ns", "elapsed_ms", "seeds_per_s",
            "enabled_over_disabled", "overhead_ratio", "guard_ns_per_site",
        ):
            assert is_timing_field(key), key

    def test_structural_fields(self):
        for key in ("frames", "seeds", "errors", "events_recorded", "verdict"):
            assert not is_timing_field(key), key


class TestCompareBench:
    def test_within_tolerance_is_ok(self):
        entries = compare_bench(
            {"wall_time_s": 1.0}, {"wall_time_s": 1.5}, tolerance=0.75
        )
        assert [e["status"] for e in entries] == ["ok"]

    def test_regression_beyond_tolerance_fails(self):
        entries = compare_bench(
            {"wall_time_s": 1.0}, {"wall_time_s": 2.0}, tolerance=0.75
        )
        assert entries[0]["status"] == "fail"
        assert entries[0]["ratio"] == 2.0

    def test_speedup_is_improved_not_fail(self):
        entries = compare_bench(
            {"wall_time_s": 2.0}, {"wall_time_s": 0.5}, tolerance=0.75
        )
        assert entries[0]["status"] == "improved"

    def test_structural_mismatch_warns(self):
        entries = compare_bench({"frames": 100}, {"frames": 200}, tolerance=0.75)
        assert entries[0]["status"] == "warn"

    def test_nested_fields_flatten(self):
        entries = compare_bench(
            {"sweep": {"seeds": 5, "elapsed_s": 1.0}},
            {"sweep": {"seeds": 5, "elapsed_s": 1.1}},
            tolerance=0.75,
        )
        by_field = {e["field"]: e["status"] for e in entries}
        assert by_field == {"sweep.seeds": "ok", "sweep.elapsed_s": "ok"}

    def test_field_set_drift_warns(self):
        entries = compare_bench({"a_s": 1.0}, {"b_s": 1.0}, tolerance=0.75)
        assert {e["status"] for e in entries} == {"warn"}

    def test_zero_baseline_timing(self):
        entries = compare_bench({"wall_time_s": 0}, {"wall_time_s": 0}, 0.75)
        assert entries[0]["status"] == "ok"
        entries = compare_bench({"wall_time_s": 0}, {"wall_time_s": 3.0}, 0.75)
        assert entries[0]["status"] == "warn"

    def test_name_key_ignored(self):
        entries = compare_bench({"name": "a"}, {"name": "b"}, tolerance=0.75)
        assert entries == []


def _write(directory, name, **fields):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps({"name": name, **fields}), encoding="utf-8"
    )


class TestCompareDirs:
    def test_report_shape_and_summary(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        _write(base, "x", wall_time_s=1.0, frames=10)
        _write(cur, "x", wall_time_s=4.0, frames=10)
        _write(base, "gone", wall_time_s=1.0)
        _write(cur, "fresh", wall_time_s=1.0)
        report = compare_dirs(base, cur, tolerance=0.75)
        assert report["format"] == "bench-diff/v1"
        assert report["benchmarks"]["x"]["status"] == "fail"
        assert report["benchmarks"]["gone"]["status"] == "missing"
        assert report["benchmarks"]["fresh"]["status"] == "new"
        assert report["summary"] == {"ok": 0, "improved": 0, "warn": 2, "fail": 1}
        json.dumps(report)  # artifact-uploadable as-is

    def test_identical_dirs_all_ok(self, tmp_path):
        base = tmp_path / "base"
        _write(base, "x", wall_time_s=1.0, frames=10)
        report = compare_dirs(base, base, tolerance=0.1)
        assert report["summary"] == {"ok": 1, "improved": 0, "warn": 0, "fail": 0}

    def test_missing_directories(self, tmp_path):
        report = compare_dirs(tmp_path / "nope", tmp_path / "nada", 0.75)
        assert report["benchmarks"] == {}
        assert report["summary"]["fail"] == 0

    def test_render(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        _write(base, "x", wall_time_s=1.0)
        _write(cur, "x", wall_time_s=4.0)
        text = render_bench_diff(compare_dirs(base, cur, tolerance=0.75))
        assert "BENCH-DIFF" in text
        assert "[fail] wall_time_s" in text
        assert "1 fail" in text


class TestCommittedBaselines:
    def test_baselines_exist_and_self_diff_clean(self):
        report = compare_dirs("benchmarks/baselines", "benchmarks/baselines")
        assert len(report["benchmarks"]) >= 14
        assert "obs_disabled_overhead" in report["benchmarks"]
        assert report["summary"]["warn"] == 0
        assert report["summary"]["fail"] == 0

    def test_cli_strict_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        base, cur = tmp_path / "base", tmp_path / "cur"
        _write(base, "x", wall_time_s=1.0)
        _write(cur, "x", wall_time_s=4.0)
        out_path = tmp_path / "diff.json"
        code = main([
            "bench-diff", "--baseline-dir", str(base),
            "--current-dir", str(cur), "--out", str(out_path),
        ])
        assert code == 0  # warn-only by default
        assert json.loads(out_path.read_text())["summary"]["fail"] == 1
        code = main([
            "bench-diff", "--baseline-dir", str(base),
            "--current-dir", str(cur), "--strict",
        ])
        assert code == 1
        capsys.readouterr()
