"""Tests for ``repro.harness.benchdiff`` — the perf-trajectory gate."""

import json

from repro.harness.benchdiff import (
    compare_bench,
    compare_dirs,
    is_rate_field,
    is_timing_field,
    render_bench_diff,
)


class TestTimingClassification:
    def test_timing_fields(self):
        for key in (
            "wall_time_s", "latency_mean_ns", "elapsed_ms", "seeds_per_s",
            "enabled_over_disabled", "overhead_ratio", "guard_ns_per_site",
        ):
            assert is_timing_field(key), key

    def test_structural_fields(self):
        for key in ("frames", "seeds", "errors", "events_recorded", "verdict"):
            assert not is_timing_field(key), key

    def test_per_frame_and_per_site_are_timing(self):
        assert is_timing_field("seam_ns_per_frame")
        assert is_timing_field("guard_ns_per_site")

    def test_hint_tokens_match_whole_words_only(self):
        # "configurations" contains "ratio" but is a structural count.
        assert not is_timing_field("configurations")
        assert is_timing_field("overhead_ratio")
        assert is_timing_field("enabled_over_disabled")


class TestCompareBench:
    def test_within_tolerance_is_ok(self):
        entries = compare_bench(
            {"wall_time_s": 1.0}, {"wall_time_s": 1.5}, tolerance=0.75
        )
        assert [e["status"] for e in entries] == ["ok"]

    def test_regression_beyond_tolerance_fails(self):
        entries = compare_bench(
            {"wall_time_s": 1.0}, {"wall_time_s": 2.0}, tolerance=0.75
        )
        assert entries[0]["status"] == "fail"
        assert entries[0]["ratio"] == 2.0

    def test_speedup_is_improved_not_fail(self):
        entries = compare_bench(
            {"wall_time_s": 2.0}, {"wall_time_s": 0.5}, tolerance=0.75
        )
        assert entries[0]["status"] == "improved"

    def test_structural_mismatch_warns(self):
        entries = compare_bench({"frames": 100}, {"frames": 200}, tolerance=0.75)
        assert entries[0]["status"] == "warn"

    def test_nested_fields_flatten(self):
        entries = compare_bench(
            {"sweep": {"seeds": 5, "elapsed_s": 1.0}},
            {"sweep": {"seeds": 5, "elapsed_s": 1.1}},
            tolerance=0.75,
        )
        by_field = {e["field"]: e["status"] for e in entries}
        assert by_field == {"sweep.seeds": "ok", "sweep.elapsed_s": "ok"}

    def test_field_set_drift_warns(self):
        entries = compare_bench({"a_s": 1.0}, {"b_s": 1.0}, tolerance=0.75)
        assert {e["status"] for e in entries} == {"warn"}

    def test_zero_baseline_timing(self):
        entries = compare_bench({"wall_time_s": 0}, {"wall_time_s": 0}, 0.75)
        assert entries[0]["status"] == "ok"
        entries = compare_bench({"wall_time_s": 0}, {"wall_time_s": 3.0}, 0.75)
        assert entries[0]["status"] == "warn"

    def test_name_key_ignored(self):
        entries = compare_bench({"name": "a"}, {"name": "b"}, tolerance=0.75)
        assert entries == []


class TestRateFields:
    """``*_per_s`` throughput: higher is better, floors are structural."""

    def test_classification(self):
        assert is_rate_field("events_per_s")
        assert is_rate_field("sweep.seeds_per_s")
        assert not is_rate_field("wall_time_s")
        assert not is_rate_field("floor_events_per_s")

    def test_rate_drop_beyond_tolerance_fails(self):
        entries = compare_bench(
            {"events_per_s": 1_000_000}, {"events_per_s": 400_000}, 0.75
        )
        assert entries[0]["status"] == "fail"
        assert "slower" in entries[0]["note"]

    def test_rate_gain_is_improved_not_fail(self):
        entries = compare_bench(
            {"events_per_s": 1_000_000}, {"events_per_s": 4_000_000}, 0.75
        )
        assert entries[0]["status"] == "improved"

    def test_rate_within_tolerance_is_ok(self):
        entries = compare_bench(
            {"events_per_s": 1_000_000}, {"events_per_s": 700_000}, 0.75
        )
        assert entries[0]["status"] == "ok"

    def test_floor_field_compares_exactly(self):
        entries = compare_bench(
            {"floor_events_per_s": 500_000}, {"floor_events_per_s": 250_000}, 0.75
        )
        assert entries[0]["status"] == "warn"
        entries = compare_bench(
            {"floor_events_per_s": 500_000}, {"floor_events_per_s": 500_000}, 0.75
        )
        assert entries[0]["status"] == "ok"


class TestGatedFields:
    """The curated strict subset used by CI's benchmark-smoke lane."""

    def test_structural_mismatch_fails_when_gated(self):
        entries = compare_bench(
            {"frames": 100}, {"frames": 200}, 0.75, gate_fields=True
        )
        assert entries[0]["status"] == "fail"

    def test_wall_time_regression_softens_to_warn(self):
        entries = compare_bench(
            {"wall_time_s": 1.0}, {"wall_time_s": 10.0}, 0.75, gate_fields=True
        )
        assert entries[0]["status"] == "warn"
        assert "slower" in entries[0]["note"]

    def test_rate_regression_still_fails(self):
        entries = compare_bench(
            {"events_per_s": 1_000_000},
            {"events_per_s": 100_000},
            0.75,
            gate_fields=True,
        )
        assert entries[0]["status"] == "fail"

    def test_field_set_drift_fails_when_gated(self):
        entries = compare_bench({"a_s": 1.0}, {"b_s": 1.0}, 0.75, gate_fields=True)
        assert {e["status"] for e in entries} == {"fail"}

    def test_environment_fields_never_gate(self):
        # workers tracks the runner's CPU count, cache_hits its cache
        # warmth; a strict lane must tolerate both varying.
        entries = compare_bench(
            {"sweep": {"workers": 1, "cache_hits": 0}},
            {"sweep": {"workers": 4, "cache_hits": 32}},
            0.75,
            gate_fields=True,
        )
        assert [e["status"] for e in entries] == ["warn", "warn"]
        assert all("environment" in e["note"] for e in entries)
        entries = compare_bench(
            {"sweep": {"workers": 2}}, {"sweep": {"workers": 2}}, 0.75,
            gate_fields=True,
        )
        assert [e["status"] for e in entries] == ["ok"]

    def test_missing_and_new_benchmarks_fail_when_gated(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        _write(base, "steady", frames=10)
        _write(cur, "steady", frames=10)
        _write(base, "gone", frames=10)
        _write(cur, "fresh", frames=10)
        report = compare_dirs(base, cur, 0.75, gate_fields=True)
        assert report["gate_fields"] is True
        assert report["benchmarks"]["gone"]["status"] == "missing"
        assert report["benchmarks"]["fresh"]["status"] == "new"
        assert report["summary"]["fail"] == 2
        assert report["summary"]["ok"] == 1

    def test_render_marks_gated_reports(self, tmp_path):
        base = tmp_path / "base"
        _write(base, "x", frames=10)
        text = render_bench_diff(compare_dirs(base, base, 0.75, gate_fields=True))
        assert "gated fields" in text


def _write(directory, name, **fields):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps({"name": name, **fields}), encoding="utf-8"
    )


class TestCompareDirs:
    def test_report_shape_and_summary(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        _write(base, "x", wall_time_s=1.0, frames=10)
        _write(cur, "x", wall_time_s=4.0, frames=10)
        _write(base, "gone", wall_time_s=1.0)
        _write(cur, "fresh", wall_time_s=1.0)
        report = compare_dirs(base, cur, tolerance=0.75)
        assert report["format"] == "bench-diff/v1"
        assert report["benchmarks"]["x"]["status"] == "fail"
        assert report["benchmarks"]["gone"]["status"] == "missing"
        assert report["benchmarks"]["fresh"]["status"] == "new"
        assert report["summary"] == {"ok": 0, "improved": 0, "warn": 2, "fail": 1}
        json.dumps(report)  # artifact-uploadable as-is

    def test_identical_dirs_all_ok(self, tmp_path):
        base = tmp_path / "base"
        _write(base, "x", wall_time_s=1.0, frames=10)
        report = compare_dirs(base, base, tolerance=0.1)
        assert report["summary"] == {"ok": 1, "improved": 0, "warn": 0, "fail": 0}

    def test_missing_directories(self, tmp_path):
        report = compare_dirs(tmp_path / "nope", tmp_path / "nada", 0.75)
        assert report["benchmarks"] == {}
        assert report["summary"]["fail"] == 0

    def test_render(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        _write(base, "x", wall_time_s=1.0)
        _write(cur, "x", wall_time_s=4.0)
        text = render_bench_diff(compare_dirs(base, cur, tolerance=0.75))
        assert "BENCH-DIFF" in text
        assert "[fail] wall_time_s" in text
        assert "1 fail" in text


class TestCommittedBaselines:
    def test_baselines_exist_and_self_diff_clean(self):
        report = compare_dirs("benchmarks/baselines", "benchmarks/baselines")
        assert len(report["benchmarks"]) >= 14
        assert "obs_disabled_overhead" in report["benchmarks"]
        assert report["summary"]["warn"] == 0
        assert report["summary"]["fail"] == 0

    def test_cli_strict_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        base, cur = tmp_path / "base", tmp_path / "cur"
        _write(base, "x", wall_time_s=1.0)
        _write(cur, "x", wall_time_s=4.0)
        out_path = tmp_path / "diff.json"
        code = main([
            "bench-diff", "--baseline-dir", str(base),
            "--current-dir", str(cur), "--out", str(out_path),
        ])
        assert code == 0  # warn-only by default
        assert json.loads(out_path.read_text())["summary"]["fail"] == 1
        code = main([
            "bench-diff", "--baseline-dir", str(base),
            "--current-dir", str(cur), "--strict",
        ])
        assert code == 1
        capsys.readouterr()


class TestCliStrictGate:
    """End-to-end CLI behaviour of the gated strict lane (as CI runs it)."""

    def _diff(self, base, cur, out, *flags):
        from repro.cli import main

        return main([
            "bench-diff", "--baseline-dir", str(base),
            "--current-dir", str(cur), "--out", str(out), *flags,
        ])

    def test_structural_mismatch_exits_one_only_when_gated(self, tmp_path, capsys):
        base, cur, out = tmp_path / "base", tmp_path / "cur", tmp_path / "d.json"
        _write(base, "x", frames=100, wall_time_s=1.0)
        _write(cur, "x", frames=200, wall_time_s=1.0)
        assert self._diff(base, cur, out, "--strict") == 0  # warn without gate
        assert self._diff(base, cur, out, "--strict", "--gate-fields") == 1
        report = json.loads(out.read_text())
        assert report["gate_fields"] is True
        assert report["benchmarks"]["x"]["status"] == "fail"
        capsys.readouterr()

    def test_missing_benchmark_detected_end_to_end(self, tmp_path, capsys):
        base, cur, out = tmp_path / "base", tmp_path / "cur", tmp_path / "d.json"
        _write(base, "kept", frames=1)
        _write(base, "gone", frames=1)
        _write(cur, "kept", frames=1)
        assert self._diff(base, cur, out, "--strict", "--gate-fields") == 1
        assert json.loads(out.read_text())["benchmarks"]["gone"]["status"] == (
            "missing"
        )
        capsys.readouterr()

    def test_new_benchmark_detected_end_to_end(self, tmp_path, capsys):
        base, cur, out = tmp_path / "base", tmp_path / "cur", tmp_path / "d.json"
        _write(base, "kept", frames=1)
        _write(cur, "kept", frames=1)
        _write(cur, "fresh", frames=1)
        assert self._diff(base, cur, out, "--strict", "--gate-fields") == 1
        assert json.loads(out.read_text())["benchmarks"]["fresh"]["status"] == "new"
        capsys.readouterr()

    def test_wall_time_noise_passes_gated_strict(self, tmp_path, capsys):
        base, cur, out = tmp_path / "base", tmp_path / "cur", tmp_path / "d.json"
        _write(base, "x", frames=100, wall_time_s=1.0)
        _write(cur, "x", frames=100, wall_time_s=10.0)
        assert self._diff(base, cur, out, "--strict", "--gate-fields") == 0
        assert json.loads(out.read_text())["summary"]["warn"] == 1
        capsys.readouterr()

    def test_rate_regression_fails_gated_strict(self, tmp_path, capsys):
        base, cur, out = tmp_path / "base", tmp_path / "cur", tmp_path / "d.json"
        _write(base, "x", events_per_s=1_000_000)
        _write(cur, "x", events_per_s=100_000)
        assert self._diff(base, cur, out, "--strict", "--gate-fields") == 1
        capsys.readouterr()
