"""Edge-case tests for the SOME/IP endpoint runtime."""

import pytest

from repro.ara import Method, ServiceInterface
from repro.errors import SomeIpError
from repro.someip.serialization import INT32
from repro.someip.wire import ReturnCode
from repro.time import SEC

from tests.conftest import build_ap_world, make_process

IFACE_V1 = ServiceInterface(
    "Svc", 0x6000, major_version=1,
    methods=[Method("ping", 1, returns=[("x", INT32)])],
)
IFACE_V2 = ServiceInterface(
    "Svc", 0x6000, major_version=2,
    methods=[Method("ping", 1, returns=[("x", INT32)])],
)


class TestErrorResponses:
    def _world_with_server(self, interface=IFACE_V1):
        world = build_ap_world()
        server = make_process(world, "p1", "server")
        skeleton = server.create_skeleton(interface, 1)
        skeleton.implement("ping", lambda: 7)
        skeleton.offer()
        return world, server, skeleton

    def test_unknown_method_error(self):
        world, server, skeleton = self._world_with_server()
        client = make_process(world, "p2", "client")
        outcomes = []

        def main():
            proxy = yield from client.find_service(IFACE_V1, 1)
            # Forge a call to a method id the server does not know by
            # going through the endpoint directly.
            from repro.ara.future import Promise

            promise = Promise(client.platform)

            def completion(code, payload, tag):
                outcomes.append(code)

            client.endpoint.send_request(
                proxy.entry, 0x7777, b"", completion
            )
            yield from promise.future.wait_until(
                client.platform.local_now() + 1 * SEC
            )

        client.spawn("main", main())
        world.run_for(3 * SEC)
        assert outcomes == [ReturnCode.E_UNKNOWN_METHOD]

    def test_wrong_interface_version_rejected_at_proxy(self):
        """A v2 client cannot even build a proxy for a v1 offer."""
        from repro.errors import AraError

        world, server, skeleton = self._world_with_server(IFACE_V1)
        client = make_process(world, "p2", "client")
        outcomes = []

        def main():
            entry = yield from client.sd.find_blocking(0x6000, 1, 1 * SEC)
            from repro.ara.proxy import ServiceProxy

            try:
                ServiceProxy(client, IFACE_V2, entry)
            except AraError:
                outcomes.append("rejected")

        client.spawn("main", main())
        world.run_for(3 * SEC)
        assert outcomes == ["rejected"]

    def test_wrong_interface_version_on_wire(self):
        """A forged request with the wrong version gets the error code."""
        world, server, skeleton = self._world_with_server(IFACE_V1)
        client = make_process(world, "p2", "client")
        outcomes = []

        def main():
            entry = yield from client.sd.find_blocking(0x6000, 1, 1 * SEC)
            from repro.sim.process import Sleep
            from repro.someip.sd import ServiceEntry

            forged = ServiceEntry(
                entry.service_id, entry.instance_id, 9, entry.host, entry.port
            )

            def completion(code, payload, tag):
                outcomes.append(code)

            client.endpoint.send_request(forged, 1, b"", completion)
            yield Sleep(1 * SEC)

        client.spawn("main", main())
        world.run_for(3 * SEC)
        assert outcomes == [ReturnCode.E_WRONG_INTERFACE_VERSION]

    def test_malformed_arguments_error(self):
        world = build_ap_world()
        server = make_process(world, "p1", "server")
        iface = ServiceInterface(
            "Args", 0x6001,
            methods=[Method("set", 1, arguments=[("v", INT32)])],
        )
        skeleton = server.create_skeleton(iface, 1)
        skeleton.implement("set", lambda v: None)
        skeleton.offer()
        client = make_process(world, "p2", "client")
        outcomes = []

        def main():
            entry = yield from client.sd.find_blocking(0x6001, 1, 1 * SEC)
            from repro.sim.process import Sleep

            def completion(code, payload, tag):
                outcomes.append(code)

            # Truncated payload: not a valid int32.
            client.endpoint.send_request(entry, 1, b"\x01", completion)
            yield Sleep(1 * SEC)

        client.spawn("main", main())
        world.run_for(3 * SEC)
        assert outcomes == [ReturnCode.E_MALFORMED_MESSAGE]


class TestServerSideGuards:
    def test_double_provide_rejected(self):
        world = build_ap_world()
        server = make_process(world, "p1", "server")
        first = server.create_skeleton(IFACE_V1, 1)
        first.implement("ping", lambda: 1)
        first.offer()
        second = server.create_skeleton(IFACE_V1, 2)
        second.implement("ping", lambda: 2)
        with pytest.raises(SomeIpError):
            second.offer()

    def test_event_id_without_flag_rejected(self):
        world = build_ap_world()
        server = make_process(world, "p1", "server")
        with pytest.raises(SomeIpError):
            server.endpoint.send_event(0x6000, 1, 0x0001, b"")

    def test_malformed_frame_counted_not_fatal(self):
        world = build_ap_world()
        server = make_process(world, "p1", "server")
        nic = world.platform("p2").attachments["nic"]
        socket = nic.bind()
        socket.send("p1", server.endpoint.port, b"garbage", 7)
        world.run_for(1 * SEC)
        assert server.endpoint.malformed_count == 1
