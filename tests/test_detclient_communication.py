"""Communicating deterministic clients (the paper's Section II.B claim).

"Because its scope is limited to individual SWCs, the solution only
addresses the first source of nondeterminism.  Applications that
consist of multiple communicating deterministic clients can still
exhibit nondeterminism via 2) and 3)."

Two SWCs built on :class:`repro.ara.DeterministicClient` — a cyclic
producer publishing samples and a cyclic consumer with a one-slot input
buffer — are each internally deterministic (identical activation and
random sequences per seed), yet the *application* drops or duplicates
samples depending on platform timing.
"""

from repro.ara import (
    ActivationReturnType,
    DeterministicClient,
    Event,
    Method,
    ServiceInterface,
)
from repro.apps.brake.instrumentation import OneSlotBuffer
from repro.sim.platform import MINNOWBOARD
from repro.someip.serialization import INT32
from repro.time import MS, SEC

from tests.conftest import build_ap_world, make_process

SAMPLES = ServiceInterface(
    "Samples", 0x7100,
    methods=[Method("noop", 1)],
    events=[Event("sample", 0x8001, data=[("n", INT32)])],
)

CYCLES = 40


def run_pair(seed: int, phase_band_ns: int = 20 * MS):
    """A det-client producer and consumer communicating via AP events.

    *phase_band_ns* bounds the consumer's seed-random start phase.  The
    full band (default) models arbitrary process start times; a narrow
    band starts the consumer close to the producer's publication
    instant — the racy schedules the paper warns about, which occupy
    only a sub-millisecond sliver of the phase space here.
    """
    world = build_ap_world(seed, platform_config=MINNOWBOARD)
    producer_process = make_process(world, "p1", "producer")
    consumer_process = make_process(world, "p2", "consumer")

    skeleton = producer_process.create_skeleton(SAMPLES, 1)
    skeleton.implement("noop", lambda: None)
    skeleton.offer()

    producer_client = DeterministicClient(
        producer_process.platform, cycle_ns=20 * MS, seed=1,
        offset_ns=400 * MS, max_cycles=CYCLES,
    )
    producer_randoms = []

    def producer_main():
        count = 0
        while True:
            activation = yield from producer_client.wait_for_activation()
            if activation is ActivationReturnType.TERMINATE:
                return
            if activation is not ActivationReturnType.RUN:
                continue
            producer_randoms.append(producer_client.get_random())
            count += 1
            skeleton.send_event("sample", count)

    producer_process.spawn("main", producer_main())

    buffer = OneSlotBuffer("consumer.in")
    # The consumer's phase relative to the producer depends on when the
    # process happened to start — seed-random, as on a real system.
    phase = world.rng.stream("consumer.phase").randint(0, phase_band_ns - 1)
    consumer_client = DeterministicClient(
        consumer_process.platform, cycle_ns=20 * MS, seed=2,
        offset_ns=400 * MS + phase, max_cycles=CYCLES + 5,
    )
    consumed = []
    consumer_randoms = []

    def consumer_main():
        proxy = yield from consumer_process.find_service(SAMPLES, 1)
        proxy.subscribe("sample", buffer.write)
        while True:
            activation = yield from consumer_client.wait_for_activation()
            if activation is ActivationReturnType.TERMINATE:
                return
            if activation is not ActivationReturnType.RUN:
                continue
            consumer_randoms.append(consumer_client.get_random())
            sample = buffer.read()
            if sample is not None:
                consumed.append(sample)

    consumer_process.spawn("main", consumer_main())
    world.run_for(3 * SEC)
    return {
        "producer_randoms": tuple(producer_randoms),
        "consumer_randoms": tuple(consumer_randoms),
        "consumed": tuple(consumed),
        "drops": buffer.drops,
    }


class TestCommunicatingDetClients:
    def test_each_client_internally_deterministic(self):
        """Per-SWC state (activation count, random sequence) is identical
        across seeds — the det-client guarantee holds."""
        runs = [run_pair(seed) for seed in range(4)]
        assert len({run["producer_randoms"] for run in runs}) == 1
        assert len({run["consumer_randoms"] for run in runs}) == 1

    def test_application_still_nondeterministic(self):
        """...but what the consumer actually *consumes* varies by seed:
        sources 2 and 3 are untouched by the det client.  Consumers are
        started within 1 ms of the producer's publication instant, the
        racy schedules that make the point."""
        runs = [run_pair(seed, phase_band_ns=1 * MS) for seed in range(6)]
        consumed_streams = {run["consumed"] for run in runs}
        assert len(consumed_streams) > 1

    def test_losses_occur_on_racy_phases(self):
        runs = [run_pair(seed, phase_band_ns=1 * MS) for seed in range(6)]
        assert any(run["drops"] > 0 for run in runs)

    def test_well_separated_phases_happen_to_work(self):
        """The flip side (and the danger): with comfortable phase
        separation the same system looks flawless in testing."""
        runs = [run_pair(seed) for seed in range(6)]
        assert all(run["drops"] == 0 for run in runs)
