"""Tests for the experiment harness (small-scale figure drivers)."""

import os

import pytest

from repro.harness import SweepRunner, env_int
from repro.harness.figures import (
    ablation_sources,
    det_case_study,
    figure1,
    figure3_sequence,
    figure5,
    let_baseline,
    overhead,
    tradeoff,
)
from repro.time import MS


def _double(seed):
    return seed * 2


class TestRunner:
    def test_sequential_map_preserves_seed_order(self):
        runner = SweepRunner(workers=1, use_cache=False)
        assert runner.map(_double, [3, 1, 2], name="order") == [6, 2, 4]

    def test_env_int_default(self):
        os.environ.pop("REPRO_TEST_KNOB", None)
        assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_env_int_override(self):
        os.environ["REPRO_TEST_KNOB"] = "42"
        try:
            assert env_int("REPRO_TEST_KNOB", 7) == 42
        finally:
            del os.environ["REPRO_TEST_KNOB"]

    @pytest.mark.parametrize("bad", ["ten", "1.5", "", "0x10"])
    def test_env_int_rejects_malformed(self, bad):
        os.environ["REPRO_TEST_KNOB"] = bad
        try:
            with pytest.raises(ValueError) as excinfo:
                env_int("REPRO_TEST_KNOB", 7)
            # The error names the variable and the offending value, so a
            # typo in a shell knob doesn't surface as a bare traceback.
            assert "REPRO_TEST_KNOB" in str(excinfo.value)
            assert repr(bad) in str(excinfo.value)
        finally:
            del os.environ["REPRO_TEST_KNOB"]


class TestFigureDriversSmall:
    """Each driver at miniature scale: structure + render sanity."""

    def test_figure1(self):
        result = figure1(nondet_seeds=8, det_seeds=2)
        assert sum(result.nondet_counts.values()) == 8
        assert set(result.det_counts) == {3}
        assert "Figure 1" in result.render()
        assert abs(sum(result.probabilities().values()) - 1.0) < 1e-9

    def test_figure3(self):
        result = figure3_sequence()
        assert result.matches_paper_chain()
        assert "tc + Dc + L + E" in result.render()

    def test_figure5(self):
        result = figure5(n_runs=3, n_frames=150)
        assert len(result.runs) == 3
        assert result.rates() == sorted(result.rates())
        assert "Figure 5" in result.render()

    def test_det_case_study(self):
        result = det_case_study(n_seeds=2, n_frames=100)
        assert result.total_errors() == 0
        assert result.commands_identical
        assert result.oracle_perfect
        assert "deterministic brake assistant" in result.render()

    def test_tradeoff_monotone(self):
        result = tradeoff(deadlines_ns=[15 * MS, 25 * MS], n_frames=80)
        assert len(result.points) == 2
        unsound, sound = result.points
        assert unsound.deadline_misses > sound.deadline_misses
        assert sound.deadline_misses == 0
        assert "trade-off" in result.render()

    def test_ablation(self):
        result = ablation_sources(n_seeds=6)
        by_label = dict(result.rows)
        assert set(by_label["sources off: serialized + FIFO"]) == {3}
        assert "sources of nondeterminism" in result.render()

    def test_overhead(self):
        result = overhead(n_frames=100)
        assert result.dear_frames_out == 100
        assert result.dear_latency.maximum < 80 * MS
        assert "Cost of determinism" in result.render()

    def test_let_baseline(self):
        result = let_baseline(n_frames=80, n_seeds=2)
        assert result.deterministic
        assert result.let_latency.mean == 200 * MS
        assert "LET" in result.render()
