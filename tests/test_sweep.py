"""Tests for the parallel sweep engine and its on-disk result cache."""

import multiprocessing
import os
import warnings
from collections import Counter
from functools import partial

import pytest

from repro.apps.brake import BrakeScenario, run_det_brake_assistant
from repro.harness import (
    SweepError,
    SweepRunner,
    code_fingerprint,
    driver_fingerprint,
)
from repro.harness.sweep import (
    ResultCache,
    _cgroup_cpu_quota,
    _decode_value,
    _encode_value,
    default_workers,
)


def _double(seed):
    return seed * 2


def _fail_on_odd(seed):
    if seed % 2:
        raise ValueError(f"seed {seed} is odd")
    return seed


class TestSweepRunner:
    def test_merges_in_seed_order(self, tmp_path):
        runner = SweepRunner(workers=4, use_cache=False, cache_dir=tmp_path)
        assert runner.map(_double, [5, 1, 3], name="t") == [10, 2, 6]

    def test_matches_sequential_map(self, tmp_path):
        """workers=4 must be bit-identical to the sequential path —
        per-seed results *and* trace fingerprints."""
        scenario = BrakeScenario(n_frames=80, deterministic_camera=True)
        experiment = partial(run_det_brake_assistant, scenario=scenario)
        sequential = SweepRunner(
            workers=1, use_cache=False, cache_dir=tmp_path
        ).map(experiment, range(3), name="det-seq")
        parallel = SweepRunner(
            workers=4, use_cache=False, cache_dir=tmp_path
        ).map(experiment, range(3), name="det")
        assert parallel == sequential  # dataclass eq: every field
        for seq_run, par_run in zip(sequential, parallel):
            assert par_run.trace_fingerprints == seq_run.trace_fingerprints
            assert par_run.commands == seq_run.commands

    def test_error_capture_does_not_kill_sweep(self, tmp_path):
        runner = SweepRunner(workers=2, use_cache=False, cache_dir=tmp_path)
        result = runner.run(_fail_on_odd, range(4), name="t")
        assert len(result.outcomes) == 4  # the sweep completed
        assert [outcome.ok for outcome in result.outcomes] == [
            True, False, True, False,
        ]
        assert result.outcomes[0].value == 0
        assert "seed 1 is odd" in result.outcomes[1].error
        with pytest.raises(SweepError, match="2 seed"):
            result.values()

    def test_failed_seeds_are_not_cached(self, tmp_path):
        runner = SweepRunner(workers=1, cache_dir=tmp_path)
        runner.run(_fail_on_odd, range(4), name="t")
        rerun = SweepRunner(workers=1, cache_dir=tmp_path).run(
            _fail_on_odd, range(4), name="t"
        )
        assert rerun.cache_hits == 2  # only the successes

    def test_stats_accumulate(self, tmp_path):
        runner = SweepRunner(workers=1, use_cache=False, cache_dir=tmp_path)
        runner.run(_double, range(3), name="a")
        runner.run(_double, range(2), name="b")
        assert runner.stats.sweeps == 2
        assert runner.stats.seeds == 5
        assert "5 seeds" in runner.stats.summary_line()


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cold = SweepRunner(workers=1, cache_dir=tmp_path)
        first = cold.run(_double, range(4), name="exp")
        assert first.cache_hits == 0
        warm = SweepRunner(workers=1, cache_dir=tmp_path)
        second = warm.run(_double, range(4), name="exp")
        assert second.cache_hits == 4
        assert second.values() == first.values()

    def test_partial_hit(self, tmp_path):
        SweepRunner(workers=1, cache_dir=tmp_path).run(
            _double, range(2), name="exp"
        )
        result = SweepRunner(workers=1, cache_dir=tmp_path).run(
            _double, range(4), name="exp"
        )
        assert result.cache_hits == 2
        assert result.values() == [0, 2, 4, 6]

    def test_force_recomputes(self, tmp_path):
        SweepRunner(workers=1, cache_dir=tmp_path).run(
            _double, range(3), name="exp"
        )
        forced = SweepRunner(workers=1, cache_dir=tmp_path, force=True).run(
            _double, range(3), name="exp"
        )
        assert forced.cache_hits == 0
        assert forced.values() == [0, 2, 4]
        # ...and the forced results land back in the cache.
        after = SweepRunner(workers=1, cache_dir=tmp_path).run(
            _double, range(3), name="exp"
        )
        assert after.cache_hits == 3

    def test_no_cache_writes_nothing(self, tmp_path):
        SweepRunner(workers=1, use_cache=False, cache_dir=tmp_path).run(
            _double, range(3), name="exp"
        )
        assert list(tmp_path.iterdir()) == []

    def test_params_partition_the_key_space(self, tmp_path):
        SweepRunner(workers=1, cache_dir=tmp_path).run(
            _double, range(3), name="exp", params={"frames": 100}
        )
        other = SweepRunner(workers=1, cache_dir=tmp_path).run(
            _double, range(3), name="exp", params={"frames": 200}
        )
        assert other.cache_hits == 0

    def test_corrupt_lines_are_misses(self, tmp_path):
        SweepRunner(workers=1, cache_dir=tmp_path).run(
            _double, range(2), name="exp"
        )
        cache_file = tmp_path / "exp.jsonl"
        cache_file.write_text("not json\n" + cache_file.read_text())
        result = SweepRunner(workers=1, cache_dir=tmp_path).run(
            _double, range(2), name="exp"
        )
        assert result.cache_hits == 2  # valid records survive the junk

    def test_payload_encoding_round_trips(self):
        for value in (
            7,
            [1, 2, 3],
            {"a": 1},
            (1, 2),                       # tuple: JSON would flatten to list
            {3: "x"},                     # int keys: JSON would stringify
            Counter({"a": 2}),
        ):
            encoding, payload = _encode_value(value)
            decoded = _decode_value(encoding, payload)
            assert decoded == value
            assert type(decoded) is type(value)

    def test_code_fingerprint_is_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


def _load_external_driver(path):
    import importlib.util
    import sys

    spec = importlib.util.spec_from_file_location("ext_sweep_driver", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["ext_sweep_driver"] = module
    spec.loader.exec_module(module)
    return module


class TestDriverFingerprint:
    """The cache key also hashes the module defining the experiment."""

    def test_repro_internal_driver_is_covered_by_code_fingerprint(self):
        assert driver_fingerprint(run_det_brake_assistant) == ""
        assert driver_fingerprint(partial(run_det_brake_assistant)) == ""

    def test_external_driver_change_invalidates_cache(self, tmp_path):
        driver_file = tmp_path / "ext_sweep_driver.py"
        driver_file.write_text("def drive(seed):\n    return seed * 2\n")
        module = _load_external_driver(driver_file)
        first = driver_fingerprint(module.drive)
        assert first != ""

        runner = SweepRunner(workers=1, cache_dir=tmp_path / "cache")
        runner.run(module.drive, range(3), name="ext")

        # Same driver source: full cache hit.
        rerun = SweepRunner(workers=1, cache_dir=tmp_path / "cache").run(
            module.drive, range(3), name="ext"
        )
        assert rerun.cache_hits == 3

        # Edited driver source: fingerprint changes, cache misses.
        driver_file.write_text("def drive(seed):\n    return seed * 3\n")
        module = _load_external_driver(driver_file)
        assert driver_fingerprint(module.drive) != first
        edited = SweepRunner(workers=1, cache_dir=tmp_path / "cache").run(
            module.drive, range(3), name="ext"
        )
        assert edited.cache_hits == 0
        assert edited.values() == [0, 3, 6]

    def test_partial_layers_are_unwrapped(self, tmp_path):
        driver_file = tmp_path / "ext_sweep_driver.py"
        driver_file.write_text("def drive(seed, scale=1):\n    return seed * scale\n")
        module = _load_external_driver(driver_file)
        direct = driver_fingerprint(module.drive)
        wrapped = driver_fingerprint(partial(partial(module.drive, scale=2)))
        assert direct == wrapped != ""


def _cache_hammer(args):
    directory, writer, count = args
    cache = ResultCache(directory)
    for index in range(count):
        record = {
            "key": f"w{writer}-{index}",
            "encoding": "json",
            "payload": [writer, index],
        }
        cache.append("contended", [record])
    return writer


class TestResultCacheCrashSafety:
    """Regression tests for concurrent appends and crash-torn lines."""

    def test_torn_tail_is_skipped_and_warned(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.append("exp", [{"key": "k1", "encoding": "json", "payload": 1}])
        with (tmp_path / "exp.jsonl").open("ab") as handle:
            handle.write(b'{"key": "k2", "enc')  # writer crashed mid-append
        fresh = ResultCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="1 malformed"):
            records = fresh.load("exp")
        assert set(records) == {"k1"}
        assert fresh.malformed == {"exp.jsonl": 1}
        # ...and only warns once per cache file, not per load.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fresh.load("exp")

    def test_append_after_crash_repairs_the_tail(self, tmp_path):
        """A record appended after a torn line must stay parseable."""
        cache = ResultCache(tmp_path)
        cache.append("exp", [{"key": "before", "encoding": "json", "payload": 1}])
        path = tmp_path / "exp.jsonl"
        with path.open("ab") as handle:
            handle.write(b'{"key": "torn...')
        cache.append("exp", [{"key": "after", "encoding": "json", "payload": 2}])
        with pytest.warns(RuntimeWarning):
            records = ResultCache(tmp_path).load("exp")
        assert set(records) == {"before", "after"}
        assert len(path.read_bytes().splitlines()) == 3

    def test_sweep_recomputes_past_a_crashed_writer(self, tmp_path):
        """End to end: a torn cache line costs a recompute, nothing else."""
        SweepRunner(workers=1, cache_dir=tmp_path).run(
            _double, range(3), name="exp"
        )
        with (tmp_path / "exp.jsonl").open("ab") as handle:
            handle.write(b'{"key": "half-a-reco')
        with pytest.warns(RuntimeWarning):
            result = SweepRunner(workers=1, cache_dir=tmp_path).run(
                _double, range(3), name="exp"
            )
        assert result.cache_hits == 3
        assert result.values() == [0, 2, 4]

    def test_parallel_process_appends_never_interleave(self, tmp_path):
        writers, per_writer = 4, 20
        with multiprocessing.Pool(writers) as pool:
            pool.map(
                _cache_hammer,
                [(str(tmp_path), w, per_writer) for w in range(writers)],
            )
        records = ResultCache(tmp_path).load("contended")
        assert len(records) == writers * per_writer
        for writer in range(writers):
            for index in range(per_writer):
                assert records[f"w{writer}-{index}"]["payload"] == [writer, index]


class TestDefaultWorkers:
    def test_repro_workers_env_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert default_workers() == 7

    def test_repro_workers_env_is_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1

    def test_cgroup_v2_quota(self, tmp_path):
        (tmp_path / "cpu.max").write_text("200000 100000\n")
        assert _cgroup_cpu_quota(tmp_path) == 2

    def test_cgroup_v2_fractional_quota_rounds_up(self, tmp_path):
        (tmp_path / "cpu.max").write_text("150000 100000\n")
        assert _cgroup_cpu_quota(tmp_path) == 2

    def test_cgroup_v2_unlimited(self, tmp_path):
        (tmp_path / "cpu.max").write_text("max 100000\n")
        assert _cgroup_cpu_quota(tmp_path) is None

    def test_cgroup_v1_quota(self, tmp_path):
        (tmp_path / "cpu").mkdir()
        (tmp_path / "cpu" / "cpu.cfs_quota_us").write_text("250000\n")
        (tmp_path / "cpu" / "cpu.cfs_period_us").write_text("100000\n")
        assert _cgroup_cpu_quota(tmp_path) == 3

    def test_cgroup_v1_unlimited(self, tmp_path):
        (tmp_path / "cpu").mkdir()
        (tmp_path / "cpu" / "cpu.cfs_quota_us").write_text("-1\n")
        (tmp_path / "cpu" / "cpu.cfs_period_us").write_text("100000\n")
        assert _cgroup_cpu_quota(tmp_path) is None

    def test_no_cgroup_files(self, tmp_path):
        assert _cgroup_cpu_quota(tmp_path) is None

    def test_quota_caps_the_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr("repro.harness.sweep._cgroup_cpu_quota", lambda: 1)
        assert default_workers() == 1

    def test_generous_quota_does_not_inflate(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr("repro.harness.sweep._cgroup_cpu_quota", lambda: 4096)
        assert default_workers() <= (os.cpu_count() or 1)
