"""Property tests for the snapshot/fork execution engine.

The contract under test: forking a copy-on-write holder captured at
decision ``k`` and running to the end is **byte-identical** to an
uninterrupted run making the same decisions — same per-environment
``Trace.fingerprint()``, same ``BrakeRunResult.outcome_digest()`` — for
both brake variants, across seeds, under replayed PCT-style preemption
schedules and with an active fault plan.  Snapshots may only ever make
runs faster, never different.
"""

from __future__ import annotations

import json

import pytest

from repro.apps.brake.det import run_det_brake_assistant
from repro.apps.brake.nondet import run_nondet_brake_assistant
from repro.explore import Explorer, calibration_scenario, shrink_schedule
from repro.explore.decisions import (
    DecisionTrace,
    InterventionSchedule,
    PreemptionPoint,
)
from repro.faults import FaultPlan
from repro.sim.rng import stream_hooks
from repro.snapshot import (
    SNAPSHOTS_SUPPORTED,
    MembershipDecisions,
    RemoteRunError,
    ScheduleDecisions,
    SnapshotEngine,
    SnapshotStore,
    context_key,
)

pytestmark = pytest.mark.skipif(
    not SNAPSHOTS_SUPPORTED, reason="needs os.fork + SEQPACKET + fd passing"
)

N_FRAMES = 5
PLAN = FaultPlan.camera_faults(seed=1, drop=0.3, label="snapshot-test")

EXPERIMENTS = {
    "det": run_det_brake_assistant,
    "nondet": run_nondet_brake_assistant,
}


def _scenario(variant: str):
    return calibration_scenario(
        N_FRAMES, deterministic_camera=(variant == "det")
    )


def _schedule(seed: int) -> InterventionSchedule:
    """A PCT-style schedule: two preemption delays at fixed sites."""
    return InterventionSchedule(
        base_seed=seed,
        preemptions=(
            PreemptionPoint(site=7, delay_ns=2_000_000),
            PreemptionPoint(site=19, delay_ns=3_000_000),
        ),
    )


def _run_scratch(variant: str, schedule: InterventionSchedule, plan=None):
    """The uninterrupted reference run (no engine, no forks)."""
    controller = schedule.controller()
    with stream_hooks(controller):
        result = EXPERIMENTS[variant](
            schedule.base_seed, _scenario(variant), fault_plan=plan
        )
    return dict(result.trace_fingerprints), result.outcome_digest()


def _engine_run(engine, variant: str, schedule: InterventionSchedule, plan=None):
    """The same run routed through the snapshot engine."""

    def run(checkpointer):
        controller = schedule.controller(checkpointer=checkpointer)
        with stream_hooks(controller):
            result = EXPERIMENTS[variant](
                schedule.base_seed, _scenario(variant), fault_plan=plan
            )
        return dict(result.trace_fingerprints), result.outcome_digest()

    context = context_key("test", variant, schedule.base_seed, plan is not None)
    return engine.execute(context, ScheduleDecisions(schedule), run)


def _engine(**kwargs) -> SnapshotEngine:
    kwargs.setdefault("write_ledger", False)
    return SnapshotEngine(**kwargs)


# ---------------------------------------------------------------------------
# Fork equivalence.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("variant", ["det", "nondet"])
def test_fork_equivalence(variant: str, seed: int):
    """Cold capture and holder fork both reproduce the scratch run
    byte-for-byte — PCT schedule and fault plan active throughout."""
    schedule = _schedule(seed)
    scratch = _run_scratch(variant, schedule, plan=PLAN)
    with _engine() as engine:
        cold = _engine_run(engine, variant, schedule, plan=PLAN)
        forked = _engine_run(engine, variant, schedule, plan=PLAN)
        assert engine.stats.misses == 1
        assert engine.stats.fork_hits == 1
    assert cold == scratch
    assert forked == scratch


def test_fork_equivalence_without_faults():
    schedule = _schedule(0)
    scratch = _run_scratch("det", schedule)
    with _engine() as engine:
        assert _engine_run(engine, "det", schedule) == scratch
        assert _engine_run(engine, "det", schedule) == scratch
        assert engine.stats.fork_hits == 1


def test_shared_prefix_fork_diverging_tail():
    """A sibling schedule sharing the first point forks from the shared
    holder and still matches its own scratch run."""
    base = _schedule(0)
    sibling = base.with_points(
        [base.preemptions[0], PreemptionPoint(site=31, delay_ns=5_000_000)]
    )
    with _engine() as engine:
        _engine_run(engine, "nondet", base)
        out = _engine_run(engine, "nondet", sibling)
        assert engine.stats.fork_hits == 1
        assert engine.stats.reused_decisions > 0
    assert out == _run_scratch("nondet", sibling)


def test_double_fork_same_holder():
    """One holder serves many forks; every continuation is identical."""
    schedule = _schedule(2)
    scratch = _run_scratch("det", schedule)
    with _engine() as engine:
        _engine_run(engine, "det", schedule)
        first = _engine_run(engine, "det", schedule)
        second = _engine_run(engine, "det", schedule)
        assert engine.stats.fork_hits == 2
    assert first == scratch
    assert second == scratch


def test_snapshot_of_a_fork():
    """Holders captured *by a continuation* serve later, deeper forks."""
    a = InterventionSchedule(
        base_seed=0, preemptions=(PreemptionPoint(site=7, delay_ns=2_000_000),)
    )
    b = a.with_points(
        list(a.preemptions) + [PreemptionPoint(site=19, delay_ns=3_000_000)]
    )
    c = b.with_points(
        list(b.preemptions) + [PreemptionPoint(site=31, delay_ns=4_000_000)]
    )
    with _engine() as engine:
        _engine_run(engine, "det", a)  # cold; captures at site 7
        _engine_run(engine, "det", b)  # forks @7; continuation captures @19
        before = engine.stats.reused_decisions
        out = _engine_run(engine, "det", c)  # must fork from the @19 holder
        assert engine.stats.fork_hits == 2
        assert engine.stats.reused_decisions - before == 19
    assert out == _run_scratch("det", c)


def test_mutation_isolation():
    """Forked continuations never leak state back into their holder."""
    schedule = _schedule(1)
    scratch = _run_scratch("det", schedule)
    mutant = schedule.with_points(
        [schedule.preemptions[0], PreemptionPoint(site=19, delay_ns=9_000_000)]
    )
    with _engine() as engine:
        assert _engine_run(engine, "det", schedule) == scratch
        _engine_run(engine, "det", mutant)  # forks and diverges
        # The original suffix must still come out of the shared holder
        # untouched by the mutant continuation's run.
        assert _engine_run(engine, "det", schedule) == scratch
        assert engine.stats.fork_hits == 2


# ---------------------------------------------------------------------------
# Store behaviour.
# ---------------------------------------------------------------------------


def test_lru_eviction_keeps_results_correct():
    schedule = _schedule(3)
    scratch = _run_scratch("det", schedule)
    store = SnapshotStore(capacity=1)
    with _engine(store=store) as engine:
        assert _engine_run(engine, "det", schedule) == scratch
        assert len(store) == 1  # two captures, one survivor
        assert engine.stats.captures == 2
        assert engine.stats.evictions >= 1
        # The surviving (deepest) holder still forks correctly.
        assert _engine_run(engine, "det", schedule) == scratch
        assert engine.stats.fork_hits == 1


def test_disabled_engine_runs_inline():
    schedule = _schedule(0)
    with _engine(enabled=False) as engine:
        assert not engine.active
        out = _engine_run(engine, "det", schedule)
        assert engine.stats.inline == 1
        assert engine.stats.captures == 0
    assert out == _run_scratch("det", schedule)


def test_error_inside_fork_raises_remote_run_error():
    with _engine() as engine:

        def run(_checkpointer):
            raise ValueError("boom in the child")

        decisions = ScheduleDecisions(_schedule(0))
        with pytest.raises(RemoteRunError, match="boom in the child"):
            engine.execute("ctx-err", decisions, run)


def test_ledger_written(tmp_path):
    store = SnapshotStore(cache_dir=tmp_path)
    with SnapshotEngine(store=store) as engine:
        _engine_run(engine, "det", _schedule(0))
    path = tmp_path / "snapshots" / "ledger.json"
    assert path.is_file()
    ledger = json.loads(path.read_text())
    assert ledger["format"] == "snapshot-ledger/v1"
    assert ledger["stats"]["captures"] >= 1


# ---------------------------------------------------------------------------
# ddmin probes routed through the engine.
# ---------------------------------------------------------------------------


def test_shrink_schedule_through_snapshots():
    """Snapshot-routed ddmin shrinks to the same minimal schedule (and
    the same probe history) as the plain from-scratch path."""
    points = [
        PreemptionPoint(site=site, delay_ns=2_000_000)
        for site in (7, 13, 19, 31)
    ]
    schedule = InterventionSchedule(base_seed=0, preemptions=tuple(points))
    needed = {13, 31}

    def predicate(outcome) -> bool:
        return needed <= {p.site for p in outcome.schedule.preemptions}

    def shrink(engine):
        explorer = Explorer(
            scenario=_scenario("nondet"),
            base_seed=0,
            strategy=None,
            snapshots=engine,
        )
        return shrink_schedule(explorer, schedule, predicate=predicate)

    plain = shrink(None)
    with _engine() as engine:
        forked = shrink(engine)
        assert engine.stats.fork_hits > 0
    assert {p.site for p in forked.minimal.preemptions} == needed
    assert forked.history == plain.history
    assert forked.trials == plain.trials


def test_shrink_fault_trace_through_snapshots():
    """Snapshot-routed fault ddmin finds the same decisive fault subset
    as the plain path, with forked probes doing the work."""
    from repro.faults import shrink_fault_trace

    scenario = _scenario("det")
    seed = 0
    live = run_det_brake_assistant(seed, scenario, fault_plan=PLAN)
    trace = DecisionTrace.from_dict(live.fault_summary["trace"])
    assert trace.records, "fault plan fired nothing; test scenario too small"

    from dataclasses import replace

    clean = run_det_brake_assistant(
        seed, scenario, fault_plan=PLAN, fault_replay=replace(trace, records=[])
    ).outcome_digest()
    assert clean != live.outcome_digest()

    def failure(candidate, checkpointer=None) -> bool:
        digest = run_det_brake_assistant(
            seed,
            scenario,
            fault_plan=PLAN,
            fault_replay=candidate,
            fault_universe=trace if checkpointer is not None else None,
            fault_checkpointer=checkpointer,
        ).outcome_digest()
        return digest != clean

    def keys(result):
        return [
            (r.stream, r.kind, r.name, r.bound) for r in result.minimal.records
        ]

    plain = shrink_fault_trace(PLAN, trace, failure)
    with _engine() as engine:
        forked = shrink_fault_trace(PLAN, trace, failure, snapshots=engine)
        assert engine.stats.fork_hits > 0
    assert keys(forked) == keys(plain)
    assert forked.history == plain.history


def test_membership_decisions_prefix_digest():
    a = MembershipDecisions((1, 0, 1, 1))
    b = MembershipDecisions((1, 0, 0, 1))
    assert a.prefix_digest(2) == b.prefix_digest(2)
    assert a.prefix_digest(3) != b.prefix_digest(3)
    assert a.span() == 4
