"""Unit tests for typed payload serialization."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import SerializationError
from repro.someip import (
    Array,
    BOOL,
    BYTES,
    FLOAT64,
    INT32,
    INT64,
    STRING,
    Struct,
    UINT8,
    UINT16,
    UINT32,
)


class TestScalars:
    @pytest.mark.parametrize(
        "spec,value",
        [
            (UINT8, 0),
            (UINT8, 255),
            (UINT16, 65535),
            (UINT32, 2**32 - 1),
            (INT32, -(2**31)),
            (INT64, 2**63 - 1),
        ],
    )
    def test_bounds_roundtrip(self, spec, value):
        assert spec.from_bytes(spec.to_bytes(value)) == value

    @pytest.mark.parametrize(
        "spec,value", [(UINT8, 256), (UINT8, -1), (INT32, 2**31), (UINT16, -7)]
    )
    def test_out_of_range(self, spec, value):
        with pytest.raises(SerializationError):
            spec.to_bytes(value)

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_int32_roundtrip(self, value):
        assert INT32.from_bytes(INT32.to_bytes(value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float64_roundtrip(self, value):
        result = FLOAT64.from_bytes(FLOAT64.to_bytes(value))
        assert result == value or (math.isnan(result) and math.isnan(value))

    def test_big_endian(self):
        assert UINT16.to_bytes(0x0102) == b"\x01\x02"


class TestBoolBytesString:
    def test_bool_roundtrip(self):
        assert BOOL.from_bytes(BOOL.to_bytes(True)) is True
        assert BOOL.from_bytes(BOOL.to_bytes(False)) is False

    def test_bool_invalid_byte(self):
        with pytest.raises(SerializationError):
            BOOL.from_bytes(b"\x02")

    @given(st.binary(max_size=500))
    def test_bytes_roundtrip(self, blob):
        assert BYTES.from_bytes(BYTES.to_bytes(blob)) == blob

    @given(st.text(max_size=200))
    def test_string_roundtrip(self, text):
        assert STRING.from_bytes(STRING.to_bytes(text)) == text

    def test_string_type_check(self):
        with pytest.raises(SerializationError):
            STRING.to_bytes(42)

    def test_truncated_bytes(self):
        data = BYTES.to_bytes(b"hello")[:-2]
        with pytest.raises(SerializationError):
            BYTES.from_bytes(data)


class TestArray:
    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=50))
    def test_roundtrip(self, values):
        spec = Array(UINT8)
        assert spec.from_bytes(spec.to_bytes(values)) == values

    def test_nested_arrays(self):
        spec = Array(Array(UINT16))
        value = [[1, 2], [], [65535]]
        assert spec.from_bytes(spec.to_bytes(value)) == value

    def test_non_sequence_rejected(self):
        with pytest.raises(SerializationError):
            Array(UINT8).to_bytes(7)


class TestStruct:
    def _spec(self):
        return Struct(
            [("id", UINT32), ("name", STRING), ("scores", Array(INT32))],
            name="record",
        )

    def test_roundtrip(self):
        spec = self._spec()
        value = {"id": 9, "name": "frame", "scores": [-1, 0, 5]}
        assert spec.from_bytes(spec.to_bytes(value)) == value

    def test_missing_field(self):
        with pytest.raises(SerializationError):
            self._spec().to_bytes({"id": 1, "name": "x"})

    def test_unknown_field(self):
        with pytest.raises(SerializationError):
            self._spec().to_bytes(
                {"id": 1, "name": "x", "scores": [], "bogus": 3}
            )

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(ValueError):
            Struct([("a", UINT8), ("a", UINT8)])

    def test_trailing_bytes_rejected(self):
        spec = self._spec()
        data = spec.to_bytes({"id": 1, "name": "", "scores": []}) + b"\x00"
        with pytest.raises(SerializationError):
            spec.from_bytes(data)

    def test_field_order_is_wire_order(self):
        spec = Struct([("a", UINT8), ("b", UINT8)])
        assert spec.to_bytes({"a": 1, "b": 2}) == b"\x01\x02"
