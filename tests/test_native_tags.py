"""The proposed standard extension: native tag transport.

The paper's conclusion advocates "an extension of the standard that
obviates the need for the workarounds we implemented to associate
method calls and events with tags".  The reproduction implements that
extension as SOME/IP protocol version 2 (a first-class tag field after
the header) selectable per endpoint; these tests check it is
wire-correct, behaviourally identical to the trailer workaround, and
interoperable with it.
"""

import pytest

from repro.ara import AraProcess, Event, Method, ServiceInterface
from repro.dear import (
    ClientEventTransactor,
    ServerEventTransactor,
    StpConfig,
    TransactorConfig,
)
from repro.errors import MalformedMessageError, SomeIpError
from repro.reactors import Environment, Reactor
from repro.someip import MessageType, SomeIpHeader, SomeIpMessage
from repro.someip.serialization import INT32
from repro.someip.wire import NATIVE_TAG_SIZE, PROTOCOL_VERSION_TAGGED
from repro.time import MS, SEC, Tag

from tests.conftest import build_ap_world

PULSE = ServiceInterface(
    "NativePulse", 0x5100,
    methods=[Method("noop", 1)],
    events=[Event("pulse", 0x8001, data=[("n", INT32)])],
)

CONFIG = TransactorConfig(deadline_ns=5 * MS, stp=StpConfig(latency_bound_ns=10 * MS))


def header():
    return SomeIpHeader(
        service_id=1, method_id=2, client_id=3, session_id=4,
        message_type=MessageType.NOTIFICATION,
    )


class TestWireFormat:
    def test_native_tag_roundtrip(self):
        message = SomeIpMessage(header(), b"payload", native_tag=Tag(50 * MS, 2))
        parsed = SomeIpMessage.unpack(message.pack())
        assert parsed.native_tag == Tag(50 * MS, 2)
        assert parsed.payload == b"payload"
        assert parsed.header.protocol_version == PROTOCOL_VERSION_TAGGED

    def test_untagged_stays_version_one(self):
        message = SomeIpMessage(header(), b"payload")
        parsed = SomeIpMessage.unpack(message.pack())
        assert parsed.native_tag is None
        assert parsed.header.protocol_version == 0x01

    def test_size_accounts_for_tag_field(self):
        plain = SomeIpMessage(header(), b"xy")
        tagged = SomeIpMessage(header(), b"xy", native_tag=Tag(0, 0))
        assert tagged.size_bytes == plain.size_bytes + NATIVE_TAG_SIZE
        assert tagged.size_bytes == len(tagged.pack())

    def test_truncated_tag_field_rejected(self):
        data = bytearray(SomeIpMessage(header(), b"").pack())
        data[12] = PROTOCOL_VERSION_TAGGED  # claim v2 without a tag field
        with pytest.raises(MalformedMessageError):
            SomeIpMessage.unpack(bytes(data))

    def test_negative_time_tags_supported(self):
        """Tags are signed on the wire (relative/early tags survive)."""
        message = SomeIpMessage(header(), b"", native_tag=Tag(-5, 1))
        assert SomeIpMessage.unpack(message.pack()).native_tag == Tag(-5, 1)


class _Pub(Reactor):
    def __init__(self, name, owner, count=4):
        super().__init__(name, owner)
        self.out = self.output("out")
        tick = self.timer("tick", offset=300 * MS, period=20 * MS)
        self.n = 0

        def fire(ctx):
            if self.n < count:
                self.n += 1
                ctx.set(self.out, self.n)

        self.reaction("fire", triggers=[tick], effects=[self.out], body=fire)


class _Sub(Reactor):
    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.inp = self.input("inp")
        self.received = []
        self.reaction(
            "recv", triggers=[self.inp],
            body=lambda ctx: self.received.append((ctx.tag, ctx.get(self.inp))),
        )


def run_chain(publisher_transport: str, subscriber_transport: str, seed=0):
    world = build_ap_world(seed)
    server_process = AraProcess(
        world.platform("p1"), "pub", tag_aware=True,
        tag_transport=publisher_transport,
    )
    server_env = Environment(name="pub", timeout=2 * SEC, trace_origin=0)
    publisher = _Pub("publisher", server_env)
    skeleton = server_process.create_skeleton(PULSE, 1)
    skeleton.implement("noop", lambda: None)
    tx = ServerEventTransactor("tx", server_env, server_process, skeleton,
                               "pulse", CONFIG)
    server_env.connect(publisher.out, tx.inp)
    skeleton.offer()
    server_env.start(world.platform("p1"))

    client_process = AraProcess(
        world.platform("p2"), "sub", tag_aware=True,
        tag_transport=subscriber_transport,
    )
    client_env = Environment(name="sub", timeout=3 * SEC, trace_origin=0)
    subscriber = _Sub("subscriber", client_env)

    def setup():
        proxy = yield from client_process.find_service(PULSE, 1)
        rx = ClientEventTransactor("rx", client_env, client_process, proxy,
                                   "pulse", CONFIG)
        client_env.connect(rx.out, subscriber.inp)
        client_env.start(world.platform("p2"))

    client_process.spawn("setup", setup())
    world.run_for(5 * SEC)
    return subscriber, client_env


class TestNativeTransportBehaviour:
    def test_native_mode_delivers_in_tag_order(self):
        subscriber, _ = run_chain("native", "native")
        assert [value for _, value in subscriber.received] == [1, 2, 3, 4]
        tags = [tag for tag, _ in subscriber.received]
        assert tags == sorted(tags)

    def test_native_and_trailer_logically_equivalent(self):
        """The encoding is transparent to application behaviour."""
        native, native_env = run_chain("native", "native")
        trailer, trailer_env = run_chain("trailer", "trailer")
        assert native.received == trailer.received
        assert native_env.trace.fingerprint() == trailer_env.trace.fingerprint()

    def test_mixed_encodings_interoperate(self):
        """A native sender with a trailer-mode receiver (and vice versa):
        receivers accept both encodings."""
        mixed_a, _ = run_chain("native", "trailer")
        mixed_b, _ = run_chain("trailer", "native")
        assert [value for _, value in mixed_a.received] == [1, 2, 3, 4]
        assert [value for _, value in mixed_b.received] == [1, 2, 3, 4]

    def test_unknown_transport_rejected(self):
        world = build_ap_world(0)
        with pytest.raises(SomeIpError):
            AraProcess(world.platform("p1"), "x", tag_aware=True,
                       tag_transport="smoke-signals")
