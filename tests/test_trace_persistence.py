"""Tests for trace save/load/diff."""

import pytest

from repro.analysis.persistence import diff_trace_files, load_trace, save_trace
from repro.reactors import Environment, Reactor
from repro.reactors.telemetry import Trace
from repro.time import MS, Tag


def small_trace(values):
    trace = Trace()
    for index, value in enumerate(values):
        trace.record(Tag(index * MS, index % 2), "set", f"port{index % 3}", value)
    return trace


class TestRoundTrip:
    def test_save_load_preserves_fingerprint(self, tmp_path):
        trace = small_trace([1, "two", 3.5, None])
        path = tmp_path / "run.trace"
        written = save_trace(trace, path)
        assert written == 4
        loaded = load_trace(path)
        assert loaded.fingerprint() == trace.fingerprint()
        assert loaded.lines() == trace.lines()

    def test_corruption_detected(self, tmp_path):
        trace = small_trace([1, 2, 3])
        path = tmp_path / "run.trace"
        save_trace(trace, path)
        lines = path.read_text().splitlines()
        lines[2] = lines[2].replace('"2"', '"999"')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            load_trace(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "not-a-trace"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(ValueError, match="not a repro-trace"):
            load_trace(path)

    def test_real_environment_trace_roundtrip(self, tmp_path):
        env = Environment(timeout=30 * MS)
        reactor = Reactor("r", env)
        out = reactor.output("out")
        tick = reactor.timer("tick", offset=0, period=10 * MS)
        reactor.reaction("emit", triggers=[tick], effects=[out],
                         body=lambda ctx: ctx.set(out, ctx.logical_time))
        env.execute()
        path = tmp_path / "env.trace"
        save_trace(env.trace, path)
        assert load_trace(path).fingerprint() == env.trace.fingerprint()


class TestDiff:
    def test_identical_files_no_divergence(self, tmp_path):
        trace = small_trace([1, 2])
        a, b = tmp_path / "a", tmp_path / "b"
        save_trace(trace, a)
        save_trace(trace, b)
        assert diff_trace_files(a, b) is None

    def test_divergence_located(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        save_trace(small_trace([1, 2, 3]), a)
        save_trace(small_trace([1, 9, 3]), b)
        divergence = diff_trace_files(a, b)
        assert divergence.index == 1
        assert "2" in divergence.left_line
        assert "9" in divergence.right_line
