"""Integration tests for the DEAR framework (transactors + STP)."""

import pytest

from repro.ara import Event, Field, Method, ServiceInterface
from repro.dear import (
    ClientEventTransactor,
    ClientMethodTransactor,
    MethodCall,
    MethodReturn,
    ServerEventTransactor,
    ServerMethodTransactor,
    StpConfig,
    TransactorConfig,
    UntaggedPolicy,
    generate_client_transactors,
    generate_server_transactors,
)
from repro.errors import DearError
from repro.reactors import Environment, Reactor
from repro.sim.platform import MINNOWBOARD
from repro.someip.serialization import INT32
from repro.time import MS, SEC

from tests.conftest import build_ap_world, make_process

ECHO = ServiceInterface(
    name="Echo",
    service_id=0x2000,
    methods=[Method("echo", 0x0001, arguments=[("x", INT32)], returns=[("x", INT32)])],
    events=[Event("pulse", 0x8001, data=[("n", INT32)])],
    fields=[Field("gain", INT32)],
)

CONFIG = TransactorConfig(
    deadline_ns=5 * MS,
    stp=StpConfig(latency_bound_ns=10 * MS, clock_error_ns=0),
)


class EchoServerLogic(Reactor):
    """Server logic: replies x+1 to echo calls."""

    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.calls_in = self.input("calls_in")
        self.replies_out = self.output("replies_out")
        self.seen = []
        self.reaction(
            "serve",
            triggers=[self.calls_in],
            effects=[self.replies_out],
            body=self._serve,
        )

    def _serve(self, ctx):
        call: MethodCall = ctx.get(self.calls_in)
        self.seen.append((ctx.tag, call.arguments))
        ctx.set(self.replies_out, MethodReturn(call.call_id, call.arguments + 1))


class EchoClientLogic(Reactor):
    """Client logic: issues calls on a timer, collects replies."""

    def __init__(self, name, owner, count=3, period=50 * MS):
        super().__init__(name, owner)
        self.call_out = self.output("call_out")
        self.reply_in = self.input("reply_in")
        self.tick = self.timer("tick", offset=10 * MS, period=period)
        self.count = count
        self.sent = 0
        self.replies = []
        self.reaction("send", triggers=[self.tick], effects=[self.call_out],
                      body=self._send)
        self.reaction("recv", triggers=[self.reply_in], body=self._recv)

    def _send(self, ctx):
        if self.sent < self.count:
            self.sent += 1
            ctx.set(self.call_out, self.sent * 10)

    def _recv(self, ctx):
        reply = ctx.get(self.reply_in)
        self.replies.append((ctx.tag, reply))
        if len(self.replies) >= self.count:
            ctx.request_stop()


def run_echo_world(seed=0):
    """Distributed DEAR method calls: client on p2, server on p1."""
    world = build_ap_world(seed, platform_config=MINNOWBOARD)
    server_process = make_process(world, "p1", "server", tag_aware=True)
    client_process = make_process(world, "p2", "client", tag_aware=True)

    server_env = Environment(name="server", timeout=2 * SEC)
    skeleton = server_process.create_skeleton(ECHO, 1)
    smt = ServerMethodTransactor(
        "echo_smt", server_env, server_process, skeleton, "echo", CONFIG
    )
    logic = EchoServerLogic("logic", server_env)
    server_env.connect(smt.request_out, logic.calls_in)
    server_env.connect(logic.replies_out, smt.response_in)
    skeleton.offer()
    server_env.start(world.platform("p1"))

    client_env = Environment(name="client", timeout=2 * SEC)
    client_logic = EchoClientLogic("logic", client_env)
    state = {}

    def client_setup():
        proxy = yield from client_process.find_service(ECHO, 1)
        cmt = ClientMethodTransactor(
            "echo_cmt", client_env, client_process, proxy, "echo", CONFIG
        )
        client_env.connect(client_logic.call_out, cmt.request)
        client_env.connect(cmt.response, client_logic.reply_in)
        client_env.start(world.platform("p2"))
        state["cmt"] = cmt

    client_process.spawn("setup", client_setup())
    world.run_for(5 * SEC)
    return world, client_logic, logic, state


class TestMethodTransactors:
    def test_round_trip_values(self):
        world, client_logic, server_logic, _ = run_echo_world()
        values = [reply.value for _, reply in client_logic.replies]
        assert values == [11, 21, 31]
        assert all(reply.ok for _, reply in client_logic.replies)

    def test_server_sees_tag_order(self):
        world, client_logic, server_logic, _ = run_echo_world()
        tags = [tag for tag, _ in server_logic.seen]
        assert tags == sorted(tags)
        assert [args for _, args in server_logic.seen] == [10, 20, 30]

    def test_reply_tag_respects_stp_chain(self):
        """Client-side reply tag must be >= tc + Dc + L + E + Ds + L + E."""
        world, client_logic, server_logic, _ = run_echo_world()
        # First call: tc = start + 10ms (client logic timer offset).
        reply_tag, _reply = client_logic.replies[0]
        minimum = 10 * MS + 2 * (CONFIG.deadline_ns + CONFIG.stp.release_delay_ns)
        assert reply_tag.time >= minimum

    def test_logical_trace_identical_across_seeds(self):
        def fingerprint(seed):
            world, client_logic, _logic, state = run_echo_world(seed)
            env = client_logic.environment
            return env.trace.fingerprint()

        assert len({fingerprint(seed) for seed in range(3)}) == 1

    def test_no_stp_violations_with_sound_bounds(self):
        world, client_logic, server_logic, state = run_echo_world()
        assert state["cmt"].stp_violations == 0
        assert state["cmt"].deadline_misses == 0


class TestEventTransactors:
    def _run(self, seed=0, publisher_period=50 * MS, count=4):
        world = build_ap_world(seed, platform_config=MINNOWBOARD)
        server_process = make_process(world, "p1", "pub", tag_aware=True)
        client_process = make_process(world, "p2", "sub", tag_aware=True)

        server_env = Environment(name="pub", timeout=1 * SEC)
        skeleton = server_process.create_skeleton(ECHO, 1)

        class Publisher(Reactor):
            def __init__(self, name, owner):
                super().__init__(name, owner)
                self.out = self.output("out")
                tick = self.timer("tick", offset=10 * MS, period=publisher_period)
                self.n = 0

                def fire(ctx):
                    if self.n < count:
                        self.n += 1
                        ctx.set(self.out, self.n)

                self.reaction("fire", triggers=[tick], effects=[self.out], body=fire)

        publisher = Publisher("publisher", server_env)
        set_tx = ServerEventTransactor(
            "pulse_set", server_env, server_process, skeleton, "pulse", CONFIG
        )
        server_env.connect(publisher.out, set_tx.inp)
        skeleton.implement("echo", lambda x: x)
        skeleton.offer()

        client_env = Environment(name="sub", timeout=2 * SEC)

        class Subscriber(Reactor):
            def __init__(self, name, owner):
                super().__init__(name, owner)
                self.inp = self.input("inp")
                self.received = []
                self.reaction(
                    "recv",
                    triggers=[self.inp],
                    body=lambda ctx: self.received.append(
                        (ctx.tag, ctx.get(self.inp))
                    ),
                )

        subscriber = Subscriber("subscriber", client_env)
        state = {}

        def setup():
            proxy = yield from client_process.find_service(ECHO, 1)
            cet = ClientEventTransactor(
                "pulse_cet", client_env, client_process, proxy, "pulse", CONFIG
            )
            client_env.connect(cet.out, subscriber.inp)
            client_env.start(world.platform("p2"))
            state["cet"] = cet
            # Give the subscription time to reach the publisher before
            # it starts emitting.
            server_env.start(world.platform("p1"))

        client_process.spawn("setup", setup())
        world.run_for(4 * SEC)
        return world, subscriber, state

    def test_events_arrive_in_tag_order_with_values(self):
        world, subscriber, state = self._run()
        values = [value for _, value in subscriber.received]
        assert values == [1, 2, 3, 4]
        tags = [tag for tag, _ in subscriber.received]
        assert tags == sorted(tags)

    def test_event_tags_carry_sender_deadline_and_stp(self):
        world, subscriber, state = self._run()
        deltas = [
            (b[0].time - a[0].time)
            for a, b in zip(subscriber.received, subscriber.received[1:])
        ]
        # Publisher period is preserved exactly in logical time.
        assert all(delta == 50 * MS for delta in deltas)

    def test_received_counter(self):
        world, subscriber, state = self._run()
        assert state["cet"].received == 4


class TestUntaggedPolicy:
    def test_untagged_fail_policy_raises(self):
        """A non-DEAR (stock) publisher sends untagged events to a DEAR
        subscriber with the default FAIL policy."""
        world = build_ap_world(0)
        server_process = make_process(world, "p1", "pub", tag_aware=False)
        client_process = make_process(world, "p2", "sub", tag_aware=True)
        skeleton = server_process.create_skeleton(ECHO, 1)
        skeleton.implement("echo", lambda x: x)
        skeleton.offer()
        client_env = Environment(name="sub", timeout=3 * SEC)
        sink = Reactor("sink", client_env)
        inp = sink.input("inp")
        sink.reaction("recv", triggers=[inp], body=lambda ctx: None)

        def setup():
            proxy = yield from client_process.find_service(ECHO, 1)
            cet = ClientEventTransactor(
                "pulse_cet", client_env, client_process, proxy, "pulse", CONFIG
            )
            client_env.connect(cet.out, inp)
            client_env.start(world.platform("p2"))

        client_process.spawn("setup", setup())
        world.run_for(1 * SEC)
        with pytest.raises(DearError):
            skeleton.send_event("pulse", 1)
            world.run_for(1 * SEC)

    def test_untagged_physical_time_fallback(self):
        """With PHYSICAL_TIME policy the stock publisher interoperates:
        the paper's backward-compatibility mode."""
        config = TransactorConfig(
            deadline_ns=5 * MS,
            stp=StpConfig(latency_bound_ns=10 * MS),
            untagged=UntaggedPolicy.PHYSICAL_TIME,
        )
        world = build_ap_world(0)
        server_process = make_process(world, "p1", "pub", tag_aware=False)
        client_process = make_process(world, "p2", "sub", tag_aware=True)
        skeleton = server_process.create_skeleton(ECHO, 1)
        skeleton.implement("echo", lambda x: x)
        skeleton.offer()
        client_env = Environment(name="sub", timeout=3 * SEC)
        received = []
        sink = Reactor("sink", client_env)
        inp = sink.input("inp")
        sink.reaction(
            "recv", triggers=[inp],
            body=lambda ctx: received.append((ctx.tag, ctx.get(inp))),
        )

        def setup():
            proxy = yield from client_process.find_service(ECHO, 1)
            cet = ClientEventTransactor(
                "pulse_cet", client_env, client_process, proxy, "pulse", config
            )
            client_env.connect(cet.out, inp)
            client_env.start(world.platform("p2"))

        client_process.spawn("setup", setup())
        world.run_for(1 * SEC)
        world.sim.after(0, lambda: skeleton.send_event("pulse", 99))
        world.run_for(1 * SEC)
        assert [value for _, value in received] == [99]


class TestCodegen:
    def test_generated_bindings_cover_interface(self):
        world = build_ap_world(0)
        server_process = make_process(world, "p1", "srv", tag_aware=True)
        client_process = make_process(world, "p2", "cli", tag_aware=True)
        server_env = Environment(name="srv")
        skeleton = server_process.create_skeleton(ECHO, 1)
        server_binding = generate_server_transactors(
            server_env, server_process, skeleton, CONFIG,
            field_initials={"gain": 7},
        )
        assert set(server_binding.methods) == {"echo"}
        assert set(server_binding.events) == {"pulse"}
        assert set(server_binding.fields) == {"gain"}
        assert server_binding.fields["gain"].value == 7
        skeleton.offer()

        collected = {}

        def setup():
            proxy = yield from client_process.find_service(ECHO, 1)
            client_env = Environment(name="cli")
            client_binding = generate_client_transactors(
                client_env, client_process, proxy, CONFIG
            )
            collected["binding"] = client_binding

        client_process.spawn("setup", setup())
        world.run_for(1 * SEC)
        client_binding = collected["binding"]
        assert set(client_binding.methods) == {"echo"}
        assert set(client_binding.events) == {"pulse"}
        assert set(client_binding.fields) == {"gain"}
        assert client_binding.fields["gain"].get is not None
        assert client_binding.fields["gain"].set is not None
        assert client_binding.fields["gain"].changed is not None

    def test_field_round_trip_through_transactors(self):
        """get/set a field end-to-end through DEAR field transactors."""
        world = build_ap_world(0, platform_config=MINNOWBOARD)
        server_process = make_process(world, "p1", "srv", tag_aware=True)
        client_process = make_process(world, "p2", "cli", tag_aware=True)
        server_env = Environment(name="srv", timeout=3 * SEC)
        skeleton = server_process.create_skeleton(ECHO, 1)
        server_binding = generate_server_transactors(
            server_env, server_process, skeleton, CONFIG,
            field_initials={"gain": 1},
        )
        skeleton.offer()
        server_env.start(world.platform("p1"))

        client_env = Environment(name="cli", timeout=3 * SEC)

        class FieldUser(Reactor):
            def __init__(self, name, owner):
                super().__init__(name, owner)
                self.set_req = self.output("set_req")
                self.set_res = self.input("set_res")
                self.changed = self.input("changed")
                self.log = []
                kick = self.timer("kick", offset=10 * MS)
                self.reaction("do_set", triggers=[kick], effects=[self.set_req],
                              body=lambda ctx: ctx.set(self.set_req, 42))
                self.reaction("on_set", triggers=[self.set_res],
                              body=lambda ctx: self.log.append(
                                  ("set", ctx.get(self.set_res).value)))
                self.reaction("on_changed", triggers=[self.changed],
                              body=lambda ctx: self.log.append(
                                  ("changed", ctx.get(self.changed))))

        user = FieldUser("user", client_env)

        def setup():
            proxy = yield from client_process.find_service(ECHO, 1)
            binding = generate_client_transactors(
                client_env, client_process, proxy, CONFIG
            )
            gain = binding.fields["gain"]
            client_env.connect(user.set_req, gain.set.request)
            client_env.connect(gain.set.response, user.set_res)
            client_env.connect(gain.changed.out, user.changed)
            client_env.start(world.platform("p2"))

        client_process.spawn("setup", setup())
        world.run_for(8 * SEC)
        assert ("set", 42) in user.log
        assert ("changed", 42) in user.log
        assert server_binding.fields["gain"].value == 42
