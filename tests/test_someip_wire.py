"""Unit tests for the SOME/IP wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MalformedMessageError
from repro.someip import MessageType, ReturnCode, SomeIpHeader, SomeIpMessage


def make_header(**overrides):
    base = dict(
        service_id=0x1234,
        method_id=0x0001,
        client_id=0x0042,
        session_id=0x0007,
        interface_version=1,
        message_type=MessageType.REQUEST,
        return_code=ReturnCode.E_OK,
    )
    base.update(overrides)
    return SomeIpHeader(**base)


class TestPackUnpack:
    def test_roundtrip(self):
        message = SomeIpMessage(make_header(), b"\x01\x02\x03")
        parsed = SomeIpMessage.unpack(message.pack())
        assert parsed == message

    def test_empty_payload(self):
        message = SomeIpMessage(make_header(), b"")
        assert SomeIpMessage.unpack(message.pack()).payload == b""

    def test_size_matches_packed_length(self):
        message = SomeIpMessage(make_header(), b"x" * 37)
        assert message.size_bytes == len(message.pack())

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(max_size=200),
        st.sampled_from(list(MessageType)),
        st.sampled_from(list(ReturnCode)),
    )
    def test_roundtrip_property(
        self, service, method, client, session, payload, mtype, rc
    ):
        header = SomeIpHeader(
            service_id=service,
            method_id=method,
            client_id=client,
            session_id=session,
            message_type=mtype,
            return_code=rc,
        )
        message = SomeIpMessage(header, payload)
        assert SomeIpMessage.unpack(message.pack()) == message


class TestIds:
    def test_message_id_composition(self):
        header = make_header(service_id=0xABCD, method_id=0x1234)
        assert header.message_id == 0xABCD1234

    def test_request_id_composition(self):
        header = make_header(client_id=0x00AA, session_id=0x0BB0)
        assert header.request_id == 0x00AA0BB0


class TestMalformed:
    def test_truncated_header(self):
        with pytest.raises(MalformedMessageError):
            SomeIpMessage.unpack(b"\x00" * 10)

    def test_length_mismatch(self):
        data = bytearray(SomeIpMessage(make_header(), b"abc").pack())
        data += b"EXTRA"
        with pytest.raises(MalformedMessageError):
            SomeIpMessage.unpack(bytes(data))

    def test_bad_protocol_version(self):
        data = bytearray(SomeIpMessage(make_header(), b"").pack())
        data[12] = 0x99
        with pytest.raises(MalformedMessageError):
            SomeIpMessage.unpack(bytes(data))

    def test_bad_message_type(self):
        data = bytearray(SomeIpMessage(make_header(), b"").pack())
        data[14] = 0x55
        with pytest.raises(MalformedMessageError):
            SomeIpMessage.unpack(bytes(data))

    def test_bad_return_code(self):
        data = bytearray(SomeIpMessage(make_header(), b"").pack())
        data[15] = 0xEE
        with pytest.raises(MalformedMessageError):
            SomeIpMessage.unpack(bytes(data))
