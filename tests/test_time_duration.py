"""Unit tests for repro.time.duration."""

import pytest
from hypothesis import given, strategies as st

from repro.time import MS, NS, SEC, US, duration, format_duration, msec, nsec, sec, usec


class TestConstructors:
    def test_unit_constants(self):
        assert NS == 1
        assert US == 1_000
        assert MS == 1_000_000
        assert SEC == 1_000_000_000

    def test_helpers(self):
        assert nsec(7) == 7
        assert usec(3) == 3_000
        assert msec(50) == 50_000_000
        assert sec(2) == 2_000_000_000


class TestParse:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("50ms", 50 * MS),
            ("5 us", 5 * US),
            ("1.5s", 1_500_000_000),
            ("100ns", 100),
            ("2min", 120 * SEC),
            ("0ms", 0),
        ],
    )
    def test_valid(self, spec, expected):
        assert duration(spec) == expected

    def test_int_passthrough(self):
        assert duration(12345) == 12345

    @pytest.mark.parametrize("spec", ["fifty ms", "50", "50 lightyears", "ms", ""])
    def test_invalid(self, spec):
        with pytest.raises(ValueError):
            duration(spec)

    def test_fractional_ns_rejected(self):
        with pytest.raises(ValueError):
            duration("0.5ns")


class TestFormat:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0s"),
            (50 * MS, "50ms"),
            (3 * SEC, "3s"),
            (7 * US, "7us"),
            (1500, "1500ns"),
            (-20 * MS, "-20ms"),
        ],
    )
    def test_format(self, value, expected):
        assert format_duration(value) == expected

    @given(st.integers(min_value=-10 * SEC, max_value=10 * SEC))
    def test_roundtrip(self, value):
        formatted = format_duration(value)
        if value >= 0:
            assert duration(formatted) == value
