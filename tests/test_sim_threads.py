"""Unit and scenario tests for simulated threads and the CPU scheduler."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import (
    Acquire,
    Compute,
    Exit,
    Join,
    Notify,
    Release,
    Sleep,
    SleepUntil,
    Wait,
    WaitResult,
    WaitUntil,
    World,
    Yield,
)
from repro.sim.platform import PlatformConfig
from repro.time import MS, US


def calm_platform(seed=0, cores=1):
    world = World(seed)
    config = PlatformConfig(
        num_cores=cores, dispatch_jitter_ns=0, timer_jitter_ns=0
    )
    return world, world.add_platform("p", config)


class TestBasicExecution:
    def test_thread_runs_and_returns(self):
        world, platform = calm_platform()

        def body():
            yield Compute(10)
            return 42

        thread = platform.spawn("t", body())
        world.run_to_completion()
        assert thread.done
        assert thread.result == 42

    def test_compute_advances_time(self):
        world, platform = calm_platform()
        seen = []

        def body():
            yield Compute(5 * MS)
            seen.append(world.now)

        platform.spawn("t", body())
        world.run_to_completion()
        assert seen == [5 * MS]

    def test_sleep_releases_core_for_other_thread(self):
        world, platform = calm_platform(cores=1)
        order = []

        def sleeper():
            order.append("sleep-start")
            yield Sleep(10 * MS)
            order.append("sleep-end")

        def worker():
            yield Compute(1 * MS)
            order.append("worker-done")

        platform.spawn("sleeper", sleeper())
        platform.spawn("worker", worker(), start_delay_ns=1)
        world.run_to_completion()
        assert order == ["sleep-start", "worker-done", "sleep-end"]

    def test_sleep_until_local_time(self):
        world, platform = calm_platform()
        seen = []

        def body():
            yield SleepUntil(7 * MS)
            seen.append(platform.local_now())

        platform.spawn("t", body())
        world.run_to_completion()
        assert seen == [7 * MS]

    def test_exit_terminates_immediately(self):
        world, platform = calm_platform()

        def body():
            yield Exit("bye")
            yield Compute(1)  # never reached

        thread = platform.spawn("t", body())
        world.run_to_completion()
        assert thread.result == "bye"

    def test_zero_compute_is_noop(self):
        world, platform = calm_platform()

        def body():
            yield Compute(0)
            return "ok"

        thread = platform.spawn("t", body())
        world.run_to_completion()
        assert thread.result == "ok"

    def test_start_delay(self):
        world, platform = calm_platform()
        seen = []

        def body():
            seen.append(world.now)
            yield Compute(1)

        platform.spawn("t", body(), start_delay_ns=3 * MS)
        world.run_to_completion()
        assert seen == [3 * MS]


class TestCores:
    def test_single_core_serializes_compute(self):
        world, platform = calm_platform(cores=1)
        finished = []

        def body(name):
            yield Compute(10 * MS)
            finished.append((name, world.now))

        platform.spawn("a", body("a"))
        platform.spawn("b", body("b"))
        world.run_to_completion()
        times = sorted(t for _, t in finished)
        assert times == [10 * MS, 20 * MS]

    def test_two_cores_run_in_parallel(self):
        world, platform = calm_platform(cores=2)
        finished = []

        def body(name):
            yield Compute(10 * MS)
            finished.append((name, world.now))

        platform.spawn("a", body("a"))
        platform.spawn("b", body("b"))
        world.run_to_completion()
        assert [t for _, t in finished] == [10 * MS, 10 * MS]

    def test_scheduling_order_varies_with_seed(self):
        """With one core the dispatch order among ready threads is random."""
        outcomes = set()
        for seed in range(20):
            world, platform = calm_platform(seed=seed)
            order = []

            def body(name, order=order):
                yield Compute(1)
                order.append(name)

            for name in ("a", "b", "c"):
                platform.spawn(name, body(name))
            world.run_to_completion()
            outcomes.add(tuple(order))
        assert len(outcomes) > 1

    def test_same_seed_same_order(self):
        def run(seed):
            world, platform = calm_platform(seed=seed)
            order = []

            def body(name, order=order):
                yield Compute(1)
                order.append(name)

            for name in ("a", "b", "c", "d"):
                platform.spawn(name, body(name))
            world.run_to_completion()
            return tuple(order)

        assert run(123) == run(123)


class TestMutex:
    def test_mutual_exclusion(self):
        world, platform = calm_platform(cores=2)
        mutex = platform.mutex()
        in_critical = [0]
        max_seen = [0]

        def body():
            for _ in range(10):
                yield Acquire(mutex)
                in_critical[0] += 1
                max_seen[0] = max(max_seen[0], in_critical[0])
                yield Compute(1 * US)
                in_critical[0] -= 1
                yield Release(mutex)

        for name in ("a", "b", "c"):
            platform.spawn(name, body())
        world.run_to_completion()
        assert max_seen[0] == 1

    def test_release_unowned_rejected(self):
        world, platform = calm_platform()
        mutex = platform.mutex()

        def body():
            yield Release(mutex)

        platform.spawn("t", body())
        with pytest.raises(SimulationError):
            world.run_to_completion()

    def test_reacquire_rejected(self):
        world, platform = calm_platform()
        mutex = platform.mutex()

        def body():
            yield Acquire(mutex)
            yield Acquire(mutex)

        platform.spawn("t", body())
        with pytest.raises(SimulationError):
            world.run_to_completion()

    def test_deadlock_detected(self):
        world, platform = calm_platform()
        m1, m2 = platform.mutex("m1"), platform.mutex("m2")

        def first():
            yield Acquire(m1)
            yield Sleep(1 * MS)
            yield Acquire(m2)

        def second():
            yield Acquire(m2)
            yield Sleep(1 * MS)
            yield Acquire(m1)

        platform.spawn("a", first())
        platform.spawn("b", second())
        with pytest.raises(DeadlockError):
            world.run_to_completion()


class TestCondVar:
    def test_wait_notify(self):
        world, platform = calm_platform()
        mutex = platform.mutex()
        cv = platform.condvar()
        log = []

        def waiter():
            yield Acquire(mutex)
            result = yield Wait(cv, mutex)
            log.append(("woken", result))
            yield Release(mutex)

        def notifier():
            yield Sleep(5 * MS)
            yield Acquire(mutex)
            yield Notify(cv)
            yield Release(mutex)

        platform.spawn("w", waiter())
        platform.spawn("n", notifier())
        world.run_to_completion()
        assert log == [("woken", WaitResult.NOTIFIED)]

    def test_wait_without_mutex_rejected(self):
        world, platform = calm_platform()
        mutex = platform.mutex()
        cv = platform.condvar()

        def body():
            yield Wait(cv, mutex)

        platform.spawn("t", body())
        with pytest.raises(SimulationError):
            world.run_to_completion()

    def test_wait_until_timeout(self):
        world, platform = calm_platform()
        mutex = platform.mutex()
        cv = platform.condvar()
        log = []

        def waiter():
            yield Acquire(mutex)
            result = yield WaitUntil(cv, mutex, platform.local_now() + 5 * MS)
            log.append((result, platform.local_now()))
            yield Release(mutex)

        platform.spawn("w", waiter())
        world.run_to_completion()
        assert log == [(WaitResult.TIMEOUT, 5 * MS)]

    def test_wait_until_notified_before_deadline(self):
        world, platform = calm_platform()
        mutex = platform.mutex()
        cv = platform.condvar()
        log = []

        def waiter():
            yield Acquire(mutex)
            result = yield WaitUntil(cv, mutex, platform.local_now() + 50 * MS)
            log.append(result)
            yield Release(mutex)

        def notifier():
            yield Sleep(2 * MS)
            yield Acquire(mutex)
            yield Notify(cv)
            yield Release(mutex)

        platform.spawn("w", waiter())
        platform.spawn("n", notifier())
        world.run_to_completion()
        assert log == [WaitResult.NOTIFIED]


class TestJoin:
    def test_join_returns_result(self):
        world, platform = calm_platform()
        log = []

        def child():
            yield Compute(3 * MS)
            return "payload"

        def parent():
            thread = platform.spawn("child", child())
            result = yield Join(thread)
            log.append((result, world.now))

        platform.spawn("parent", parent())
        world.run_to_completion()
        assert log == [("payload", 3 * MS)]

    def test_join_finished_thread_immediate(self):
        world, platform = calm_platform()
        log = []

        def child():
            yield Compute(1)
            return 7

        thread = platform.spawn("child", child())

        def parent():
            yield Sleep(5 * MS)
            result = yield Join(thread)
            log.append(result)

        platform.spawn("parent", parent())
        world.run_to_completion()
        assert log == [7]


class TestPeriodic:
    def test_periodic_activations(self):
        world, platform = calm_platform()
        ticks = []

        def body():
            ticks.append(platform.local_now())
            yield Compute(1 * MS)

        platform.periodic("tick", 10 * MS, body, offset_ns=2 * MS)
        world.run_for(45 * MS)
        assert ticks == [2 * MS, 12 * MS, 22 * MS, 32 * MS, 42 * MS]

    def test_overrun_skips_activations(self):
        world, platform = calm_platform()
        ticks = []

        def body():
            ticks.append(platform.local_now())
            yield Compute(25 * MS)  # overruns a 10 ms period

        task = platform.periodic("slow", 10 * MS, body)
        world.run_for(100 * MS)
        assert task.overruns > 0
        # activations anchored to the grid: 0, 30, 60, 90
        assert ticks == [0, 30 * MS, 60 * MS, 90 * MS]

    def test_cancel_stops_task(self):
        world, platform = calm_platform()
        ticks = []

        def body():
            ticks.append(platform.local_now())
            yield Compute(1)

        task = platform.periodic("tick", 10 * MS, body)
        world.run_for(25 * MS)
        task.cancel()
        count = len(ticks)
        world.run_for(50 * MS)
        assert len(ticks) == count


class TestYield:
    def test_yield_interleaves(self):
        world, platform = calm_platform(seed=3)
        log = []

        def body(name):
            for i in range(3):
                log.append((name, i))
                yield Yield()

        platform.spawn("a", body("a"))
        platform.spawn("b", body("b"))
        world.run_to_completion()
        assert len(log) == 6
        assert {name for name, _ in log} == {"a", "b"}
