"""Reactor runtime embedded in the platform simulation."""

import pytest

from repro.errors import DeadlineViolation
from repro.reactors import Deadline, Environment, Reactor
from repro.sim import World
from repro.sim.platform import CALM, MINNOWBOARD
from repro.time import MS, SEC


def sim_env(seed=0, config=CALM, **env_kwargs):
    world = World(seed)
    platform = world.add_platform("board", config)
    env = Environment(**env_kwargs)
    return world, platform, env


class TestSimExecution:
    def test_timer_fires_at_physical_time(self):
        world, platform, env = sim_env(timeout=100 * MS)
        reactor = Reactor("r", env)
        tick = reactor.timer("tick", offset=10 * MS, period=20 * MS)
        log = []
        reactor.reaction(
            "note",
            triggers=[tick],
            body=lambda ctx: log.append((ctx.tag.time, platform.local_now())),
        )
        env.start(platform)
        world.run_for(1 * SEC)
        assert env.terminated
        assert len(log) == 5
        for logical, physical in log:
            assert physical >= logical  # never processed early
            assert physical - logical < 1 * MS  # calm platform: tiny lag

    def test_exec_time_consumes_simulated_cpu(self):
        world, platform, env = sim_env(timeout=10 * MS)
        reactor = Reactor("r", env)
        start = reactor.timer("start", offset=0)
        log = []
        reactor.reaction(
            "heavy",
            triggers=[start],
            body=lambda ctx: log.append(platform.local_now()),
            exec_time=7 * MS,
        )
        env.start(platform)
        world.run_for(1 * SEC)
        assert log and log[0] >= 7 * MS

    def test_start_time_anchors_logical_clock(self):
        world, platform, env = sim_env(timeout=10 * MS)
        reactor = Reactor("r", env)
        start = reactor.timer("start", offset=0)
        tags = []
        reactor.reaction(
            "note", triggers=[start], body=lambda ctx: tags.append(ctx.tag)
        )
        world.run_for(500 * MS)  # start the environment late
        env.start(platform)
        world.run_for(1 * SEC)
        assert tags[0].time >= 500 * MS


class TestPhysicalActions:
    def test_external_schedule_is_tagged_with_physical_time(self):
        world, platform, env = sim_env()
        reactor = Reactor("r", env)
        sensor = reactor.physical_action("sensor")
        log = []

        def on_sensor(ctx):
            log.append((ctx.tag.time, ctx.get(sensor)))
            if len(log) >= 2:
                ctx.request_stop()

        reactor.reaction("on_sensor", triggers=[sensor], body=on_sensor)
        env.start(platform)
        world.sim.at(30 * MS, lambda: sensor.schedule("a"))
        world.sim.at(70 * MS, lambda: sensor.schedule("b"))
        world.run_for(1 * SEC)
        assert [value for _, value in log] == ["a", "b"]
        assert log[0][0] >= 30 * MS
        assert log[1][0] >= 70 * MS
        assert env.terminated

    def test_min_delay_applies_to_physical_action(self):
        world, platform, env = sim_env(timeout=200 * MS)
        reactor = Reactor("r", env)
        sensor = reactor.physical_action("sensor", min_delay=25 * MS)
        log = []
        reactor.reaction(
            "note", triggers=[sensor], body=lambda ctx: log.append(ctx.tag.time)
        )
        env.start(platform)
        world.sim.at(10 * MS, lambda: sensor.schedule())
        world.run_for(1 * SEC)
        assert log and log[0] >= 35 * MS

    def test_scheduler_waits_until_tag_before_processing(self):
        """Events in the physical future are not processed early — the
        in-order processing rule for sporadic actions."""
        world, platform, env = sim_env(timeout=500 * MS)
        reactor = Reactor("r", env)
        sensor = reactor.physical_action("sensor", min_delay=100 * MS)
        log = []
        reactor.reaction(
            "note",
            triggers=[sensor],
            body=lambda ctx: log.append((ctx.tag.time, platform.local_now())),
        )
        env.start(platform)
        world.sim.at(10 * MS, lambda: sensor.schedule())
        world.run_for(1 * SEC)
        tag_time, processed_at = log[0]
        assert tag_time >= 110 * MS
        assert processed_at >= tag_time


class TestDeadlinesSimMode:
    def _deadline_env(self, exec_before=0, deadline_ns=5 * MS, handler=True):
        world, platform, env = sim_env(timeout=100 * MS)
        reactor = Reactor("r", env)
        first = reactor.timer("first", offset=10 * MS)
        outcome = []
        # A heavy predecessor reaction delays the guarded one past its tag.
        reactor.reaction(
            "heavy", triggers=[first], body=lambda ctx: None, exec_time=exec_before
        )
        reactor.reaction(
            "guarded",
            triggers=[first],
            body=lambda ctx: outcome.append("body"),
            deadline=Deadline(
                deadline_ns,
                handler=(lambda ctx: outcome.append("handler")) if handler else None,
            ),
        )
        env.start(platform)
        return world, env, outcome

    def test_deadline_met_runs_body(self):
        world, env, outcome = self._deadline_env(exec_before=1 * MS)
        world.run_for(1 * SEC)
        assert outcome == ["body"]

    def test_deadline_violated_runs_handler(self):
        world, env, outcome = self._deadline_env(exec_before=20 * MS)
        world.run_for(1 * SEC)
        assert outcome == ["handler"]

    def test_violation_counted_and_traced(self):
        world, env, outcome = self._deadline_env(exec_before=20 * MS)
        world.run_for(1 * SEC)
        guarded = [r for r in env.all_reactions() if r.name == "guarded"][0]
        assert guarded.deadline_violations == 1
        assert any(rec.kind == "deadline-miss" for rec in env.trace.records)

    def test_violation_without_handler_raises(self):
        world, env, outcome = self._deadline_env(exec_before=20 * MS, handler=False)
        with pytest.raises(DeadlineViolation):
            world.run_for(1 * SEC)


class TestDeterminism:
    def _pipeline_trace(self, seed, config=MINNOWBOARD):
        """A three-stage reactor pipeline on a noisy platform."""
        world = World(seed)
        platform = world.add_platform("board", config)
        env = Environment(name="pipeline", timeout=300 * MS)

        class Stage(Reactor):
            def __init__(self, name, owner, cost):
                super().__init__(name, owner)
                self.inp = self.input("inp")
                self.out = self.output("out")
                self.reaction(
                    "work",
                    triggers=[self.inp],
                    effects=[self.out],
                    body=lambda ctx: ctx.set(self.out, ctx.get(self.inp) + 1),
                    exec_time=cost,
                )

        class Source(Reactor):
            def __init__(self, name, owner):
                super().__init__(name, owner)
                self.out = self.output("out")
                tick = self.timer("tick", offset=0, period=50 * MS)
                self.count = 0

                def emit(ctx):
                    self.count += 1
                    ctx.set(self.out, self.count * 100)

                self.reaction("emit", triggers=[tick], effects=[self.out], body=emit)

        source = Source("source", env)
        s1 = Stage("s1", env, cost=3 * MS)
        s2 = Stage("s2", env, cost=5 * MS)
        env.connect(source.out, s1.inp)
        env.connect(s1.out, s2.inp)
        env.start(platform)
        world.run_for(1 * SEC)
        assert env.terminated
        return env.trace.fingerprint()

    def test_identical_trace_across_seeds(self):
        """The logical behaviour must not depend on platform timing noise."""
        fingerprints = {self._pipeline_trace(seed) for seed in range(5)}
        assert len(fingerprints) == 1

    def test_trace_differs_for_different_program(self):
        base = self._pipeline_trace(0)
        calm = self._pipeline_trace(0, config=CALM)
        # Same program on a different platform config: logical trace equal.
        assert base == calm
