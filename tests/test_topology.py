"""Tests for first-class network topologies (TopologySpec + fabric routing)."""

import pytest

from repro.errors import NetworkError
from repro.network import (
    ConstantLatency,
    NetworkInterface,
    Switch,
    SwitchConfig,
    UniformLatency,
)
from repro.network.topology import Link, Route, TopologySpec
from repro.sim import World
from repro.sim.platform import CALM
from repro.time import MS, US


def star3():
    return TopologySpec.star(("a", "b", "c"))


def two_switch():
    """a,b on sw0; c on sw1; one trunk."""
    return TopologySpec.chain((("a", "b"), ("c",)))


class TestValidation:
    def test_needs_nodes(self):
        with pytest.raises(NetworkError):
            TopologySpec(nodes=())

    def test_needs_switches(self):
        with pytest.raises(NetworkError):
            TopologySpec(nodes=("a",), switches=())

    def test_names_unique_across_nodes_and_switches(self):
        with pytest.raises(NetworkError):
            TopologySpec(nodes=("a", "sw0"), links=(Link("a", "sw0"),))

    def test_link_endpoints_must_be_declared(self):
        with pytest.raises(NetworkError):
            TopologySpec(
                nodes=("a",), links=(Link("a", "sw0"), Link("ghost", "sw0"))
            )

    def test_node_to_node_links_rejected(self):
        with pytest.raises(NetworkError):
            TopologySpec(
                nodes=("a", "b"),
                links=(Link("a", "sw0"), Link("b", "sw0"), Link("a", "b")),
            )

    def test_duplicate_links_rejected(self):
        with pytest.raises(NetworkError):
            TopologySpec(
                nodes=("a",), links=(Link("a", "sw0"), Link("sw0", "a"))
            )

    def test_node_needs_exactly_one_uplink(self):
        with pytest.raises(NetworkError):
            TopologySpec(nodes=("a", "b"), links=(Link("a", "sw0"),))
        with pytest.raises(NetworkError):
            TopologySpec(
                nodes=("a",),
                switches=("sw0", "sw1"),
                links=(Link("a", "sw0"), Link("a", "sw1"), Link("sw0", "sw1")),
            )

    def test_fabric_must_be_connected(self):
        with pytest.raises(NetworkError):
            TopologySpec(
                nodes=("a", "b"),
                switches=("sw0", "sw1"),
                links=(Link("a", "sw0"), Link("b", "sw1")),
            )

    def test_link_rejects_self_loop_and_empty_names(self):
        with pytest.raises(NetworkError):
            Link("x", "x")
        with pytest.raises(NetworkError):
            Link("", "sw0")

    def test_link_key_is_direction_independent(self):
        assert Link("b", "a").key == Link("a", "b").key == ("a", "b")


class TestShape:
    def test_star_is_trivial(self):
        assert star3().is_trivial

    def test_per_link_override_breaks_triviality(self):
        topo = TopologySpec.star(("a", "b"), latency=ConstantLatency(1 * US))
        assert not topo.is_trivial

    def test_multi_switch_is_not_trivial(self):
        assert not two_switch().is_trivial

    def test_trivial_constructor_matches_star(self):
        assert TopologySpec.trivial(("a", "b")) == TopologySpec.star(("a", "b"))

    def test_chain_shape(self):
        topo = two_switch()
        assert topo.nodes == ("a", "b", "c")
        assert topo.switches == ("sw0", "sw1")
        assert Link("sw0", "sw1").key in {link.key for link in topo.links}


class TestRouting:
    def test_same_switch_single_hop(self):
        route = star3().route("a", "b")
        assert route.switches == ("sw0",)
        assert [link.key for link in route.links] == [("a", "sw0"), ("b", "sw0")]

    def test_cross_switch_route_traverses_trunk(self):
        route = two_switch().route("a", "c")
        assert route.switches == ("sw0", "sw1")
        assert [link.key for link in route.links] == [
            ("a", "sw0"),
            ("sw0", "sw1"),
            ("c", "sw1"),
        ]

    def test_route_to_self_is_empty(self):
        assert two_switch().route("a", "a") == Route(links=(), switches=())

    def test_unknown_endpoint_raises(self):
        with pytest.raises(NetworkError):
            star3().route("a", "ghost")

    def test_equal_cost_ties_break_lexicographically(self):
        """A diamond: two 2-switch paths from src's switch to dst's —
        BFS visits neighbours in sorted order, so the route through the
        lexicographically smaller middle switch always wins."""
        topo = TopologySpec(
            nodes=("src", "dst"),
            switches=("sw-in", "sw-mid-a", "sw-mid-b", "sw-out"),
            links=(
                Link("src", "sw-in"),
                Link("dst", "sw-out"),
                Link("sw-in", "sw-mid-a"),
                Link("sw-in", "sw-mid-b"),
                Link("sw-mid-a", "sw-out"),
                Link("sw-mid-b", "sw-out"),
            ),
        )
        for _ in range(3):
            assert topo.route("src", "dst").switches == (
                "sw-in",
                "sw-mid-a",
                "sw-out",
            )

    def test_route_is_stable_across_instances(self):
        first = two_switch().route("a", "c").link_keys
        second = two_switch().route("a", "c").link_keys
        assert first == second


class TestLatencyBound:
    def test_single_switch_bound(self):
        topo = star3()
        bound = topo.latency_bound(ConstantLatency(100), 2)
        # Worst pair: two links, each 100ns + 1500B * 2ns/B.
        assert bound == 2 * (100 + 1500 * 2)

    def test_per_link_overrides_respected(self):
        topo = TopologySpec(
            nodes=("a", "b"),
            links=(
                Link("a", "sw0", latency=ConstantLatency(1 * MS), ns_per_byte=0),
                Link("b", "sw0"),
            ),
        )
        bound = topo.latency_bound(ConstantLatency(100), 1)
        assert bound == (1 * MS + 0) + (100 + 1500 * 1)

    def test_uniform_link_uses_model_bound(self):
        topo = TopologySpec.star(("a", "b"), latency=UniformLatency(10, 50))
        assert topo.latency_bound(ConstantLatency(0), 0) == 2 * 50


class TestSerialization:
    def test_round_trip(self):
        topo = TopologySpec.chain(
            (("a", "b"), ("c",)),
            trunk_latency=ConstantLatency(5 * US),
            trunk_ns_per_byte=16,
        )
        assert TopologySpec.from_dict(topo.to_dict()) == topo

    def test_dict_format_tag(self):
        assert star3().to_dict()["format"] == "topology/v1"

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            TopologySpec.from_dict({"format": "nonsense/v1"})


def fabric_net(topology, seed=0, config=None):
    world = World(seed)
    platforms = {n: world.add_platform(n, CALM) for n in topology.nodes}
    if config is None:
        config = SwitchConfig(
            latency=ConstantLatency(100 * US), ns_per_byte=8, topology=topology
        )
    switch = Switch(world.sim, world.rng.stream("net"), config)
    world.attach_network(switch)
    nics = {n: NetworkInterface(platforms[n], switch) for n in topology.nodes}
    return world, nics, switch


class TestFabricSwitch:
    def test_cross_switch_delivery_pays_per_hop(self):
        world, nics, _ = fabric_net(two_switch())
        src = nics["a"].bind(1)
        dst = nics["c"].bind(2)
        arrivals = []
        dst.on_receive = lambda frame: arrivals.append(world.now)
        src.send("c", 2, payload=None, size_bytes=100)
        world.run_for(10 * MS)
        # Three hops, each: 100B * 8ns/B serialization + 100us latency.
        assert arrivals == [3 * (100 * 8 + 100 * US)]

    def test_shared_trunk_serializes_contending_frames(self):
        world, nics, _ = fabric_net(two_switch())
        a = nics["a"].bind(1)
        b = nics["b"].bind(1)
        dst = nics["c"].bind(2)
        arrivals = []
        dst.on_receive = lambda frame: arrivals.append((frame.src_host, world.now))
        a.send("c", 2, payload=None, size_bytes=100)
        b.send("c", 2, payload=None, size_bytes=100)
        world.run_for(10 * MS)
        assert len(arrivals) == 2
        first, second = sorted(time for _, time in arrivals)
        # The second frame queues behind the first's serialization on
        # both the trunk and the destination leg.
        assert second > first

    def test_trivial_topology_matches_legacy_switch_draw_for_draw(self):
        topo = TopologySpec.trivial(("a", "b"))
        config_kwargs = dict(latency=UniformLatency(50 * US, 200 * US), ns_per_byte=8)

        def arrivals_with(config):
            world = World(7)
            pa = world.add_platform("a", CALM)
            pb = world.add_platform("b", CALM)
            switch = Switch(world.sim, world.rng.stream("net"), config)
            world.attach_network(switch)
            nic_a = NetworkInterface(pa, switch)
            nic_b = NetworkInterface(pb, switch)
            src = nic_a.bind(1)
            dst = nic_b.bind(2)
            out = []
            dst.on_receive = lambda frame: out.append(world.now)
            for _ in range(20):
                src.send("b", 2, payload=None, size_bytes=64)
            world.run_for(100 * MS)
            return out

        legacy = arrivals_with(SwitchConfig(**config_kwargs))
        fabric = arrivals_with(SwitchConfig(topology=topo, **config_kwargs))
        assert legacy == fabric

    def test_latency_bound_reported_by_switch(self):
        topo = two_switch()
        world, _, switch = fabric_net(topo)
        expected = topo.latency_bound(ConstantLatency(100 * US), 8)
        assert switch.latency_bound() >= expected
