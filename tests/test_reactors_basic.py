"""Unit tests for the reactor runtime in fast (logical time) mode."""

import pytest

from repro.errors import (
    AssemblyError,
    CausalityError,
    SchedulingError,
)
from repro.reactors import Environment, Reactor
from repro.time import MS, Tag


class Emitter(Reactor):
    """Emits count values on a timer."""

    def __init__(self, name, owner, period=10 * MS, limit=None):
        super().__init__(name, owner)
        self.out = self.output("out")
        self.tick = self.timer("tick", offset=0, period=period)
        self.count = 0
        self.limit = limit
        self.reaction("emit", triggers=[self.tick], effects=[self.out], body=self._emit)

    def _emit(self, ctx):
        self.count += 1
        ctx.set(self.out, self.count)
        if self.limit is not None and self.count >= self.limit:
            ctx.request_stop()


class Collector(Reactor):
    """Records every (tag, value) it receives."""

    def __init__(self, name, owner):
        super().__init__(name, owner)
        self.inp = self.input("inp")
        self.received = []
        self.reaction("collect", triggers=[self.inp], body=self._collect)

    def _collect(self, ctx):
        self.received.append((ctx.tag, ctx.get(self.inp)))


class TestTimersAndConnections:
    def test_timer_drives_pipeline(self):
        env = Environment(timeout=35 * MS)
        emitter = Emitter("emitter", env)
        collector = Collector("collector", env)
        env.connect(emitter.out, collector.inp)
        env.execute()
        values = [value for _, value in collector.received]
        assert values == [1, 2, 3, 4]
        times = [tag.time for tag, _ in collector.received]
        assert times == [0, 10 * MS, 20 * MS, 30 * MS]

    def test_logical_simultaneity(self):
        """An event traverses a zero-delay chain within a single tag."""
        env = Environment(timeout=5 * MS)
        emitter = Emitter("emitter", env, period=10 * MS)
        collector = Collector("collector", env)
        env.connect(emitter.out, collector.inp)
        env.execute()
        tag, value = collector.received[0]
        assert tag == Tag(0, 0)
        assert value == 1

    def test_one_shot_timer(self):
        env = Environment(timeout=100 * MS)
        holder = Reactor("holder", env)
        fired = []
        once = holder.timer("once", offset=7 * MS)
        holder.reaction("go", triggers=[once], body=lambda ctx: fired.append(ctx.tag))
        env.execute()
        assert fired == [Tag(7 * MS, 0)]

    def test_fan_out(self):
        env = Environment(timeout=0)
        emitter = Emitter("emitter", env)
        sinks = [Collector(f"sink{i}", env) for i in range(3)]
        for sink in sinks:
            env.connect(emitter.out, sink.inp)
        env.execute()
        for sink in sinks:
            assert [v for _, v in sink.received] == [1]

    def test_request_stop_ends_execution(self):
        env = Environment()  # no timeout: stop comes from the reactor
        emitter = Emitter("emitter", env, limit=3)
        collector = Collector("collector", env)
        env.connect(emitter.out, collector.inp)
        env.execute()
        assert [v for _, v in collector.received] == [1, 2, 3]
        assert env.terminated


class TestStartupShutdown:
    def test_startup_fires_once_at_first_tag(self):
        env = Environment(timeout=50 * MS)
        reactor = Reactor("r", env)
        log = []
        reactor.timer("tick", offset=0, period=10 * MS)  # keeps program alive
        reactor.reaction(
            "init", triggers=[reactor.startup], body=lambda ctx: log.append(ctx.tag)
        )
        env.execute()
        assert log == [Tag(0, 0)]

    def test_shutdown_fires_at_stop_tag(self):
        env = Environment(timeout=25 * MS)
        reactor = Reactor("r", env)
        log = []
        reactor.timer("tick", offset=0, period=10 * MS)
        reactor.reaction(
            "fini", triggers=[reactor.shutdown], body=lambda ctx: log.append(ctx.tag)
        )
        env.execute()
        assert log == [Tag(25 * MS, 0)]

    def test_startup_and_timer_share_first_tag(self):
        env = Environment(timeout=0)
        reactor = Reactor("r", env)
        order = []
        tick = reactor.timer("tick", offset=0, period=10 * MS)
        reactor.reaction(
            "a", triggers=[reactor.startup], body=lambda ctx: order.append("startup")
        )
        reactor.reaction("b", triggers=[tick], body=lambda ctx: order.append("tick"))
        env.execute()
        # Same reactor: declaration order decides execution order.
        assert order[:2] == ["startup", "tick"]


class TestLogicalActions:
    def test_zero_delay_advances_microstep(self):
        env = Environment(timeout=10 * MS)
        reactor = Reactor("r", env)
        log = []
        act = reactor.logical_action("act")
        start = reactor.timer("start", offset=0)

        def kick(ctx):
            ctx.schedule(act, "ping")

        def on_act(ctx):
            log.append((ctx.tag, ctx.get(act)))

        reactor.reaction("kick", triggers=[start], effects=[act], body=kick)
        reactor.reaction("on_act", triggers=[act], body=on_act)
        env.execute()
        assert log == [(Tag(0, 1), "ping")]

    def test_min_delay_plus_extra_delay(self):
        env = Environment(timeout=20 * MS)
        reactor = Reactor("r", env)
        log = []
        act = reactor.logical_action("act", min_delay=3 * MS)
        start = reactor.timer("start", offset=0)
        reactor.reaction(
            "kick",
            triggers=[start],
            effects=[act],
            body=lambda ctx: ctx.schedule(act, extra_delay=2 * MS),
        )
        reactor.reaction("on_act", triggers=[act], body=lambda ctx: log.append(ctx.tag))
        env.execute()
        assert log == [Tag(5 * MS, 0)]

    def test_self_rescheduling_action(self):
        env = Environment(timeout=10 * MS)
        reactor = Reactor("r", env)
        ticks = []
        act = reactor.logical_action("act", min_delay=4 * MS)
        start = reactor.timer("start", offset=0)

        def fire(ctx):
            ticks.append(ctx.tag.time)
            ctx.schedule(act)

        reactor.reaction("kick", triggers=[start], effects=[act],
                         body=lambda ctx: ctx.schedule(act))
        reactor.reaction("fire", triggers=[act], effects=[act], body=fire)
        env.execute()
        assert ticks == [4 * MS, 8 * MS]


class TestDeclarationEnforcement:
    def test_undeclared_effect_rejected(self):
        env = Environment(timeout=0)
        reactor = Reactor("r", env)
        out = reactor.output("out")
        start = reactor.timer("start", offset=0)
        reactor.reaction(
            "bad", triggers=[start], body=lambda ctx: ctx.set(out, 1)
        )
        with pytest.raises(SchedulingError):
            env.execute()

    def test_undeclared_read_rejected(self):
        env = Environment(timeout=0)
        emitter = Emitter("emitter", env)
        reactor = Reactor("r", env)
        inp = reactor.input("inp")
        env.connect(emitter.out, inp)
        start = reactor.timer("start", offset=0)
        reactor.reaction("bad", triggers=[start], body=lambda ctx: ctx.get(inp))
        with pytest.raises(SchedulingError):
            env.execute()

    def test_source_read_allowed(self):
        env = Environment(timeout=0)
        emitter = Emitter("emitter", env)
        reactor = Reactor("r", env)
        inp = reactor.input("inp")
        env.connect(emitter.out, inp)
        start = reactor.timer("start", offset=0)
        seen = []
        reactor.reaction(
            "peek",
            triggers=[start],
            sources=[inp],
            body=lambda ctx: seen.append(ctx.get(inp)),
        )
        env.execute()
        assert seen == [1]  # emitter ran first (lower level)

    def test_reaction_without_triggers_rejected(self):
        env = Environment(timeout=0)
        reactor = Reactor("r", env)
        with pytest.raises(SchedulingError):
            reactor.reaction("bad", triggers=[], body=lambda ctx: None)


class TestAssemblyValidation:
    def test_input_single_upstream(self):
        env = Environment()
        a = Emitter("a", env)
        b = Emitter("b", env)
        sink = Collector("sink", env)
        env.connect(a.out, sink.inp)
        with pytest.raises(AssemblyError):
            env.connect(b.out, sink.inp)

    def test_same_reactor_output_to_input_rejected(self):
        env = Environment()
        reactor = Reactor("r", env)
        out = reactor.output("out")
        inp = reactor.input("inp")
        with pytest.raises(AssemblyError):
            env.connect(out, inp)

    def test_causality_cycle_detected(self):
        env = Environment()
        a = Reactor("a", env)
        b = Reactor("b", env)
        a_in, a_out = a.input("inp"), a.output("out")
        b_in, b_out = b.input("inp"), b.output("out")
        a.reaction("fwd", triggers=[a_in], effects=[a_out],
                   body=lambda ctx: ctx.set(a_out, ctx.get(a_in)))
        b.reaction("fwd", triggers=[b_in], effects=[b_out],
                   body=lambda ctx: ctx.set(b_out, ctx.get(b_in)))
        env.connect(a.out if False else a_out, b_in)
        env.connect(b_out, a_in)
        with pytest.raises(CausalityError):
            env.execute()

    def test_delayed_connection_breaks_cycle(self):
        env = Environment(timeout=1 * MS)
        a = Reactor("a", env)
        b = Reactor("b", env)
        a_in, a_out = a.input("inp"), a.output("out")
        b_in, b_out = b.input("inp"), b.output("out")
        hops = []

        def fwd_a(ctx):
            hops.append(("a", ctx.tag))
            if len(hops) < 6:
                ctx.set(a_out, ctx.get(a_in))

        def fwd_b(ctx):
            hops.append(("b", ctx.tag))
            ctx.set(b_out, ctx.get(b_in))

        start = a.timer("start", offset=0)
        a.reaction("kick", triggers=[start], effects=[a_out],
                   body=lambda ctx: ctx.set(a_out, 0))
        a.reaction("fwd", triggers=[a_in], effects=[a_out], body=fwd_a)
        b.reaction("fwd", triggers=[b_in], effects=[b_out], body=fwd_b)
        env.connect(a_out, b_in)
        env.connect(b_out, a_in, after=0)  # microstep delay breaks the cycle
        env.execute()
        assert [who for who, _ in hops[:4]] == ["b", "a", "b", "a"]
        microsteps = [tag.microstep for who, tag in hops if who == "b"]
        assert microsteps == sorted(microsteps)

    def test_duplicate_element_names_rejected(self):
        env = Environment()
        reactor = Reactor("r", env)
        reactor.output("x")
        reactor.input("x")
        start = reactor.timer("start", offset=0)
        reactor.reaction("go", triggers=[start], body=lambda ctx: None)
        with pytest.raises(AssemblyError):
            env.execute()

    def test_empty_environment_rejected(self):
        with pytest.raises(AssemblyError):
            Environment().execute()

    def test_no_mutation_after_assembly(self):
        env = Environment(timeout=0)
        reactor = Reactor("r", env)
        start = reactor.timer("start", offset=0)
        reactor.reaction("go", triggers=[start], body=lambda ctx: None)
        env.assemble()
        with pytest.raises(AssemblyError):
            Reactor("late", env)


class TestHierarchy:
    def test_nested_reactor_delegation(self):
        env = Environment(timeout=0)

        class Composite(Reactor):
            def __init__(self, name, owner):
                super().__init__(name, owner)
                self.inp = self.input("inp")
                self.out = self.output("out")
                inner = Collector("inner", self)
                inner_emit = Emitter("inner_emit", self)
                self.environment.connect(self.inp, inner.inp)
                self.environment.connect(inner_emit.out, self.out)
                self.inner = inner

        composite = Composite("comp", env)
        emitter = Emitter("emitter", env)
        sink = Collector("sink", env)
        env.connect(emitter.out, composite.inp)
        env.connect(composite.out, sink.inp)
        env.execute()
        assert [v for _, v in composite.inner.received] == [1]
        assert [v for _, v in sink.received] == [1]

    def test_fqn_path(self):
        env = Environment()
        outer = Reactor("outer", env)
        inner = Reactor("inner", outer)
        port = inner.input("inp")
        assert inner.fqn == "outer.inner"
        assert port.fqn == "outer.inner.inp"


class TestLevels:
    def test_pipeline_levels_increase(self):
        env = Environment(timeout=0)
        emitter = Emitter("emitter", env)
        middle = Reactor("middle", env)
        m_in, m_out = middle.input("inp"), middle.output("out")
        middle.reaction("fwd", triggers=[m_in], effects=[m_out],
                        body=lambda ctx: ctx.set(m_out, ctx.get(m_in)))
        sink = Collector("sink", env)
        env.connect(emitter.out, m_in)
        env.connect(m_out, sink.inp)
        env.assemble()
        emit_level = emitter.reactions[0].level
        fwd_level = middle.reactions[0].level
        sink_level = sink.reactions[0].level
        assert emit_level < fwd_level < sink_level

    def test_same_reactor_priority_order(self):
        env = Environment(timeout=0)
        reactor = Reactor("r", env)
        start = reactor.timer("start", offset=0)
        order = []
        for name in ("first", "second", "third"):
            reactor.reaction(
                name, triggers=[start], body=lambda ctx, name=name: order.append(name)
            )
        env.execute()
        assert order == ["first", "second", "third"]


class TestDeadlinesFastMode:
    def test_no_violation_in_fast_mode(self):
        from repro.reactors import Deadline

        env = Environment(timeout=0)
        reactor = Reactor("r", env)
        start = reactor.timer("start", offset=0)
        ran = []
        reactor.reaction(
            "guarded",
            triggers=[start],
            body=lambda ctx: ran.append("body"),
            deadline=Deadline(1 * MS, handler=lambda ctx: ran.append("handler")),
        )
        env.execute()
        assert ran == ["body"]
