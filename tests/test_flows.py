"""Tests for ``repro.obs.flows`` — causal flow tracing.

Covers the registry primitives (hop chains, first-wins drop
attribution, delivery-wins semantics, the cross-boundary correlation
maps), the report builder / merger / validator, the labeled-counter
reconciliation against per-layer drop counters, the Perfetto flow-event
export, the headline determinism invariant (fingerprints byte-identical
flows on/off for both variants), and the ``repro flows`` CLI.
"""

import json

import pytest

from repro import obs
from repro.obs.flows import (
    CAUSE_BUFFER_OVERWRITE,
    CAUSE_FAULT_DROP,
    CAUSE_IN_FLIGHT,
    FlowRegistry,
    LAYER_APP,
    LAYER_SWITCH,
    flow_id_of,
    flow_report,
    merge_flow_reports,
    validate_flow_report,
)
from repro.obs.metrics import MetricsRegistry, labeled, parse_labeled


def _registry():
    return FlowRegistry(MetricsRegistry())


class TestFlowIdOf:
    def test_dict_and_object_payloads(self):
        class Command:
            frame_seq = 7

        assert flow_id_of({"seq": 3}) == 3
        assert flow_id_of({"frame_seq": 4}) == 4
        assert flow_id_of({"seq": 3, "frame_seq": 9}) == 3  # seq wins
        assert flow_id_of(Command()) == 7

    def test_uncorrelated_values(self):
        assert flow_id_of({"tick": 1}) is None
        assert flow_id_of(42) is None
        assert flow_id_of(None) is None
        assert flow_id_of({"seq": True}) is None  # bools are not flow ids
        assert flow_id_of({"seq": "3"}) is None


class TestFlowRegistry:
    def test_begin_hop_deliver(self):
        flows = _registry()
        flows.begin(0, ts=100)
        flows.hop(0, "switch", "cam->ecu", 250)
        flows.deliver(0, ts=1000)
        record = flows.flows[0]
        assert [hop.layer for hop in record.hops] == [
            "sensor", "switch", "actuator",
        ]
        assert record.delivered_ns == 1000
        snapshot = flows._metrics.snapshot()
        assert snapshot["counters"]["flow.begun"] == 1
        assert snapshot["counters"]["flow.delivered"] == 1
        assert snapshot["histograms"]["flow.hop.switch_ns"]["count"] == 1
        assert snapshot["histograms"]["flow.e2e_latency_ns"]["max"] == 900

    def test_first_drop_wins(self):
        flows = _registry()
        flows.begin(0, ts=0)
        flows.drop(0, "switch", "random-drop", 10)
        flows.drop(0, "nic", "fcs-drop", 20)
        assert flows.flows[0].drop == ("switch", "random-drop", 10)

    def test_delivery_beats_branch_drop(self):
        # A fan-out branch (the lane copy) can be overwritten while the
        # frame itself still reaches the actuator: attribution means the
        # *frame* was lost, so delivery clears any branch verdict.
        flows = _registry()
        flows.begin(0, ts=0)
        flows.drop(0, "app", "buffer-overwrite", 50)
        flows.deliver(0, ts=100)
        assert flows.flows[0].drop is None
        flows.drop(0, "app", "buffer-overwrite", 150)  # post-delivery: ignored
        assert flows.flows[0].drop is None

    def test_frame_refcount_survives_duplicates(self):
        flows = _registry()
        flows.begin(3, ts=0)
        frame = object()
        flows.frame_sent(frame, 3)
        flows.frame_sent(frame, 3)  # duplicate fault: same object, twice
        assert flows.frame_arrived(frame) == 3
        assert flows.frame_arrived(frame) == 3
        assert flows.frame_arrived(frame) is None  # released
        assert flows._frames == {}

    def test_event_binding_uses_current_flow(self):
        flows = _registry()
        flows.begin(5, ts=0)
        value = {"payload": 1}
        flows.bind_event(value)
        previous = flows.swap_current(None)
        assert flows.event_arrived(value) == 5
        assert flows.event_arrived(value) is None  # one-shot
        flows.restore_current(previous)
        assert flows.current == 5

    def test_unknown_flow_is_ignored(self):
        flows = _registry()
        flows.hop(99, "switch", "x", 1)
        flows.drop(99, "switch", "y", 1)
        flows.deliver(99, 1)
        assert flows.flows == {}


class TestAttributeDrop:
    def test_labeled_counter_and_flow_attribution(self):
        with obs.capture(flows=True) as observation:
            observation.flows.begin(0, ts=0)
            obs.attribute_drop(observation, LAYER_SWITCH, CAUSE_FAULT_DROP, 10)
        name = labeled("drops_total", layer=LAYER_SWITCH, cause=CAUSE_FAULT_DROP)
        assert observation.metrics.snapshot()["counters"][name] == 1
        assert observation.flows.flows[0].drop == (
            LAYER_SWITCH, CAUSE_FAULT_DROP, 10,
        )
        family, labels = parse_labeled(name)
        assert family == "drops_total"
        assert labels == {"layer": LAYER_SWITCH, "cause": CAUSE_FAULT_DROP}

    def test_counter_without_flows(self):
        # Flow tracing off, observability on: the unified counter still
        # counts, just with nothing to attribute.
        with obs.capture() as observation:
            obs.attribute_drop(observation, LAYER_APP, CAUSE_BUFFER_OVERWRITE, 5)
        name = labeled("drops_total", layer=LAYER_APP, cause=CAUSE_BUFFER_OVERWRITE)
        assert observation.metrics.snapshot()["counters"][name] == 1


def _report(delivered=2, dropped=1):
    flows = _registry()
    ts = 0
    for flow_id in range(delivered + dropped):
        flows.begin(flow_id, ts)
        flows.hop(flow_id, "switch", "cam->ecu", ts + 10)
        if flow_id < delivered:
            flows.deliver(flow_id, ts + 100)
        else:
            flows.drop(flow_id, "switch", "random-drop", ts + 10)
        ts += 1000
    return flow_report(flows)


class TestFlowReport:
    def test_summary_invariants(self):
        report = _report(delivered=3, dropped=2)
        assert validate_flow_report(report) == []
        summary = report["summary"]
        assert summary["total"] == 5
        assert summary["delivered"] == 3
        assert summary["dropped"] == 2
        assert summary["unattributed"] == 0
        assert summary["drops_by_layer"] == {"switch": 2}
        assert summary["drops_by_cause"] == {"random-drop": 2}
        assert summary["e2e_p50_ns"] == 100

    def test_in_flight_fallback_counts_as_unattributed(self):
        flows = _registry()
        flows.begin(0, ts=0)
        flows.hop(0, "switch", "cam->ecu", 10)
        report = flow_report(flows)
        assert report["summary"]["unattributed"] == 1
        assert report["flows"]["0"]["drop"] == ["switch", CAUSE_IN_FLIGHT, 10]
        # The fallback keeps the document itself valid.
        assert validate_flow_report(report) == []

    def test_critical_path_dominant_segment(self):
        flows = _registry()
        flows.begin(0, ts=0)
        flows.hop(0, "switch", "a", 10)
        flows.hop(0, "dear", "b", 900)  # the expensive segment
        flows.deliver(0, 1000)
        path = flow_report(flows)["critical_path"]
        assert path["dominant"] == {"switch->dear": 1}
        assert path["segments"]["switch->dear"]["max_ns"] == 890

    def test_json_round_trip(self):
        report = _report()
        again = json.loads(json.dumps(report))
        assert again == report
        assert validate_flow_report(again) == []

    def test_merge(self):
        merged = merge_flow_reports([_report(2, 1), _report(1, 2)])
        assert merged["format"] == "flow-report-aggregate/v1"
        assert merged["runs"] == 2
        summary = merged["summary"]
        assert summary["total"] == 6
        assert summary["delivered"] == 3
        assert summary["dropped"] == 3
        assert summary["drops_by_cause"] == {"random-drop": 3}
        assert validate_flow_report(merged) == []
        segments = merged["critical_path"]["segments"]
        assert segments["sensor->switch"]["count"] == 3

    def test_validator_catches_violations(self):
        report = _report()
        report["summary"]["delivered"] += 1
        assert any("delivered + dropped" in p for p in validate_flow_report(report))
        report = _report()
        report["flows"]["0"]["drop"] = ["switch", "x", 1]  # delivered AND dropped
        assert any("both delivered" in p for p in validate_flow_report(report))
        report = _report()
        report["flows"]["2"]["drop"] = None  # undelivered without attribution
        assert any("without attribution" in p for p in validate_flow_report(report))
        assert validate_flow_report([]) == ["flow report is not a dict"]


class TestBrakeFlows:
    def test_det_all_frames_delivered_with_quantiles(self):
        from repro.explore import calibration_scenario
        from repro.obs.drivers import run_brake_flows

        scenario = calibration_scenario(20, deterministic_camera=True)
        run = run_brake_flows(0, scenario, "det")
        report = run["report"]
        assert validate_flow_report(report) == []
        summary = report["summary"]
        assert summary["total"] >= 20
        assert summary["delivered"] == summary["total"]
        assert summary["unattributed"] == 0
        # Per-hop quantiles appear in the shared metrics snapshot.
        histograms = run["metrics"]["histograms"]
        e2e = histograms["flow.e2e_latency_ns"]
        assert e2e["count"] == summary["delivered"]
        assert e2e["p95"] >= e2e["p50"] > 0
        assert any(name.startswith("flow.hop.") for name in histograms)

    def test_every_lost_frame_has_exactly_one_attribution(self):
        from repro.explore import calibration_scenario
        from repro.faults import FaultPlan
        from repro.obs.drivers import run_brake_flows

        scenario = calibration_scenario(40, deterministic_camera=True)
        plan = FaultPlan.camera_faults(seed=3, drop=0.15, label="flows-test")
        run = run_brake_flows(0, scenario, "det", fault_plan=plan)
        report = run["report"]
        assert validate_flow_report(report) == []
        summary = report["summary"]
        assert summary["dropped"] > 0, "fault plan should lose at least one frame"
        assert summary["unattributed"] == 0
        assert sum(summary["drops_by_cause"].values()) == summary["dropped"]
        for entry in report["flows"].values():
            if entry["delivered_ns"] is None:
                assert isinstance(entry["drop"], list) and len(entry["drop"]) == 3
            else:
                assert entry["drop"] is None

    def test_drops_total_reconciles_with_attribution(self):
        from repro.explore import calibration_scenario
        from repro.faults import FaultPlan
        from repro.obs.drivers import run_brake_flows

        scenario = calibration_scenario(40, deterministic_camera=True)
        plan = FaultPlan.camera_faults(seed=3, drop=0.2, label="flows-recon")
        run = run_brake_flows(0, scenario, "det", fault_plan=plan)
        counters = run["metrics"]["counters"]
        by_cause: dict[str, int] = {}
        for name, value in counters.items():
            family, labels = parse_labeled(name)
            if family == "drops_total":
                by_cause[labels["cause"]] = by_cause.get(labels["cause"], 0) + value
        summary = run["report"]["summary"]
        # Every attributed frame loss is backed by a labeled counter
        # increment; the counters may additionally count branch losses
        # (copies that died while the frame still delivered).
        for cause, count in summary["drops_by_cause"].items():
            if cause == CAUSE_IN_FLIGHT:
                continue  # report-time fallback, never counted live
            assert by_cause.get(cause, 0) >= count
        assert counters[labeled(
            "drops_total", layer=LAYER_SWITCH, cause=CAUSE_FAULT_DROP,
        )] == summary["drops_by_cause"][CAUSE_FAULT_DROP]

    def test_nondet_attributes_its_losses(self):
        from repro.apps.brake import BrakeScenario
        from repro.obs.drivers import run_brake_flows

        run = run_brake_flows(5, BrakeScenario(n_frames=120), "nondet")
        report = run["report"]
        assert validate_flow_report(report) == []
        # The stock variant loses frames to app-level buffer overwrites
        # on most seeds; whatever happened, nothing may go unexplained.
        assert report["summary"]["unattributed"] == 0


class TestDeterminismInvariant:
    @pytest.mark.parametrize("variant", ["det", "nondet"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_fingerprints_identical_flows_on_off(self, variant, seed):
        from repro.explore import calibration_scenario
        from repro.obs.drivers import observe_brake_flows, observe_brake_run

        scenario = calibration_scenario(15, deterministic_camera=True)
        _, plain = observe_brake_run(seed, scenario, variant)
        _, flowed = observe_brake_flows(seed, scenario, variant)
        assert dict(plain.trace_fingerprints) == dict(flowed.trace_fingerprints)
        assert plain.commands == flowed.commands

    def test_fingerprints_identical_under_faults(self):
        from repro.explore import calibration_scenario
        from repro.faults import FaultPlan
        from repro.obs.drivers import observe_brake_flows

        scenario = calibration_scenario(20, deterministic_camera=True)
        plan = FaultPlan.camera_faults(seed=1, drop=0.1, label="det-check")
        from repro.apps.brake.det import run_det_brake_assistant

        baseline = run_det_brake_assistant(0, scenario, fault_plan=plan)
        _, flowed = observe_brake_flows(0, scenario, "det", fault_plan=plan)
        assert dict(baseline.trace_fingerprints) == dict(flowed.trace_fingerprints)


class TestFlowExport:
    def _observed(self):
        from repro.explore import calibration_scenario
        from repro.obs.drivers import observe_brake_flows

        scenario = calibration_scenario(10, deterministic_camera=True)
        observation, _ = observe_brake_flows(0, scenario, "det")
        return observation

    def test_flow_events_emitted_and_valid(self):
        observation = self._observed()
        events = obs.trace_events(observation)
        assert obs.validate_trace_data(events) == []
        flow_events = [e for e in events if e["ph"] in ("s", "t", "f")]
        assert flow_events, "flow tracing should emit Perfetto arrows"
        # File order is per-lane (track, ts); phase order is by timestamp.
        by_id: dict[int, list[tuple[float, str]]] = {}
        for event in flow_events:
            by_id.setdefault(event["id"], []).append((event["ts"], event["ph"]))
            assert event["cat"] == "flow"
        for anchors in by_id.values():
            phases = [ph for _, ph in anchors]
            assert phases.count("s") == 1
            assert phases.count("f") == 1
            start_ts = next(ts for ts, ph in anchors if ph == "s")
            finish_ts = next(ts for ts, ph in anchors if ph == "f")
            assert start_ts == min(ts for ts, _ in anchors)
            assert finish_ts == max(ts for ts, _ in anchors)

    def test_flow_anchors_bind_to_span_tids(self):
        observation = self._observed()
        events = obs.trace_events(observation)
        span_tids = {e["tid"] for e in events if e["ph"] == "X"}
        finish = [e for e in events if e["ph"] == "f"]
        assert all(e["tid"] in span_tids for e in finish)
        assert all(e.get("bp") == "e" for e in finish)

    def test_plain_observation_has_no_flow_events(self):
        from repro.explore import calibration_scenario
        from repro.obs.drivers import observe_brake_run

        scenario = calibration_scenario(10, deterministic_camera=True)
        observation, _ = observe_brake_run(0, scenario, "det")
        phases = {e["ph"] for e in obs.trace_events(observation)}
        assert phases <= {"M", "X", "i"}

    def test_validator_rejects_flow_event_without_id(self):
        problems = obs.validate_trace_data([
            {"name": "flow 1", "ph": "s", "pid": 1, "tid": 1, "ts": 0.0},
        ])
        assert any("no id" in p for p in problems)


class TestCli:
    def test_flows_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "flows.json"
        trace_path = tmp_path / "flow-trace.json"
        code = main([
            "flows", "--seeds", "2", "--frames", "15", "--workers", "1",
            "--no-cache", "--out", str(out_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        document = json.loads(out_path.read_text())
        assert document["format"] == "flow-sweep-report/v1"
        for variant in ("det", "nondet"):
            assert validate_flow_report(document[variant]) == []
        assert document["det"]["summary"]["unattributed"] == 0
        diff = document["diff"]
        assert diff["det_delivered"] >= diff["stock_delivered"]
        trace = json.loads(trace_path.read_text())
        assert obs.validate_trace_data(trace) == []
        assert {"s", "f"} <= {e["ph"] for e in trace["traceEvents"]}
        out = capsys.readouterr().out
        assert "FLOWS diff" in out

    def test_flows_single_variant_with_fault_plan(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "flows-det.json"
        code = main([
            "flows", "--seeds", "1", "--frames", "40", "--variant", "det",
            "--drop", "0.15", "--fault-seed", "3",
            "--workers", "1", "--no-cache", "--out", str(out_path),
        ])
        assert code == 0
        document = json.loads(out_path.read_text())
        assert "diff" not in document
        summary = document["det"]["summary"]
        assert summary["dropped"] > 0
        assert summary["unattributed"] == 0
        assert "fault" in " ".join(summary["drops_by_cause"])
