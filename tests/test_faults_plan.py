"""Fault-plan model: matching/severing semantics and serialization."""

import pytest

from repro.faults import (
    ClockFault,
    FaultPlan,
    LinkFault,
    NodeOutage,
    Partition,
)
from repro.time import MS


class TestLinkFault:
    def test_wildcards_match_everything(self):
        fault = LinkFault(drop_probability=0.5)
        assert fault.matches("a", "b", 1, 0)
        assert fault.matches("x", "y", 30490, 10**12)

    def test_selective_fields(self):
        fault = LinkFault(src_host="cam", dst_host="ecu", dst_port=15000)
        assert fault.matches("cam", "ecu", 15000, 0)
        assert not fault.matches("cam", "ecu", 15001, 0)
        assert not fault.matches("cam", "other", 15000, 0)
        assert not fault.matches("other", "ecu", 15000, 0)

    def test_time_window(self):
        fault = LinkFault(start_ns=100, end_ns=200)
        assert not fault.matches("a", "b", 1, 99)
        assert fault.matches("a", "b", 1, 100)
        assert fault.matches("a", "b", 1, 199)
        assert not fault.matches("a", "b", 1, 200)

    def test_open_ended_window(self):
        fault = LinkFault(start_ns=100)
        assert fault.matches("a", "b", 1, 10**15)


class TestPartition:
    def test_severs_all_inter_host_by_default(self):
        part = Partition(start_ns=0, end_ns=100)
        assert part.severs("a", "b", 50)
        assert not part.severs("a", "a", 50), "loopback is never severed"
        assert not part.severs("a", "b", 100), "window is half-open"

    def test_severs_across_host_group_only(self):
        part = Partition(start_ns=0, end_ns=100, hosts=("a",))
        assert part.severs("a", "b", 0)
        assert part.severs("b", "a", 0)
        assert not part.severs("b", "c", 0), "both outside the group"

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            Partition(start_ns=0, end_ns=1, mode="teleport")

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            Partition(start_ns=5, end_ns=4)


class TestNodeOutage:
    def test_down_window(self):
        outage = NodeOutage(host="ecu", start_ns=10, end_ns=20)
        assert not outage.down("ecu", 9)
        assert outage.down("ecu", 10)
        assert outage.down("ecu", 19)
        assert not outage.down("ecu", 20)
        assert not outage.down("other", 15)


class TestFaultPlan:
    def test_empty_plan(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(partitions=(Partition(0, 1),)).is_empty

    def test_round_trip(self):
        plan = FaultPlan(
            seed=42,
            label="everything",
            link_faults=(
                LinkFault(
                    src_host="cam",
                    dst_port=15000,
                    drop_probability=0.1,
                    duplicate_probability=0.05,
                    reorder_probability=0.02,
                    corrupt_probability=0.01,
                    spike_probability=0.03,
                    spike_ns=2 * MS,
                ),
            ),
            partitions=(Partition(start_ns=1 * MS, end_ns=3 * MS, mode="drop"),),
            outages=(NodeOutage(host="ecu", start_ns=5 * MS, end_ns=6 * MS),),
            clock_faults=(ClockFault(host="ecu", at_ns=7 * MS, step_ns=100),),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_save_load(self, tmp_path):
        plan = FaultPlan.camera_faults(seed=3, drop=0.2, label="cam")
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError):
            FaultPlan.load(path)

    def test_with_seed_keeps_configuration(self):
        plan = FaultPlan.camera_faults(seed=1, drop=0.25)
        reseeded = plan.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.link_faults == plan.link_faults

    def test_camera_faults_targets_frame_port(self):
        plan = FaultPlan.camera_faults(drop=0.5)
        (fault,) = plan.link_faults
        assert fault.dst_port == 15000
        assert fault.drop_probability == 0.5

    def test_describe_mentions_contents(self):
        plan = FaultPlan.camera_faults(
            seed=2, drop=0.1, partitions=(Partition(0, 1),), label="x"
        )
        text = plan.describe()
        assert "link fault" in text and "partition" in text and "[x]" in text

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            LinkFault(drop_probability=1.5)
        with pytest.raises(ValueError):
            LinkFault(corrupt_probability=-0.1)
