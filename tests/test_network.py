"""Unit tests for the network substrate."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetworkError
from repro.network import (
    ConstantLatency,
    GammaLatency,
    NetworkInterface,
    SpikyLatency,
    Switch,
    SwitchConfig,
    UniformLatency,
)
from repro.sim import World
from repro.sim.platform import CALM
from repro.time import MS, US


def make_net(seed=0, config=None):
    world = World(seed)
    a = world.add_platform("a", CALM)
    b = world.add_platform("b", CALM)
    switch = Switch(world.sim, world.rng.stream("net"), config)
    world.attach_network(switch)
    nic_a = NetworkInterface(a, switch)
    nic_b = NetworkInterface(b, switch)
    return world, nic_a, nic_b


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(500)
        assert model.sample(random.Random(0)) == 500
        assert model.bound() == 500

    def test_uniform_within_range(self):
        model = UniformLatency(100, 200)
        rng = random.Random(1)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(100 <= s <= 200 for s in samples)
        assert model.bound() == 200

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(200, 100)
        with pytest.raises(ValueError):
            UniformLatency(-5, 100)

    def test_gamma_respects_bound(self):
        model = GammaLatency(base_ns=1000, shape=2.0, scale_ns=500)
        rng = random.Random(2)
        bound = model.bound()
        for _ in range(500):
            sample = model.sample(rng)
            assert 1000 <= sample <= bound

    def test_spiky_bound_excludes_spike(self):
        base = ConstantLatency(100)
        model = SpikyLatency(base, spike_probability=0.5, spike_ns=10_000)
        rng = random.Random(3)
        samples = {model.sample(rng) for _ in range(100)}
        assert samples == {100, 10_100}
        assert model.bound() == 100  # deliberately ignores the spike

    @given(st.integers(min_value=0, max_value=10**9))
    def test_constant_bound_equals_sample(self, value):
        model = ConstantLatency(value)
        assert model.sample(random.Random(0)) == model.bound()


class TestDelivery:
    def test_frame_reaches_destination(self):
        world, nic_a, nic_b = make_net()
        src = nic_a.bind(1000)
        dst = nic_b.bind(2000)
        src.send("b", 2000, payload={"k": 1}, size_bytes=64)
        world.run_for(100 * MS)
        assert dst.received == 1
        frames = dst.rx.peek_all()
        assert frames[0].payload == {"k": 1}
        assert frames[0].src_host == "a"
        assert frames[0].src_port == 1000

    def test_unknown_host_raises(self):
        world, nic_a, _ = make_net()
        src = nic_a.bind(1000)
        with pytest.raises(NetworkError):
            src.send("nowhere", 1, payload=None, size_bytes=10)

    def test_unbound_port_drops_silently(self):
        world, nic_a, nic_b = make_net()
        src = nic_a.bind(1000)
        src.send("b", 9999, payload="x", size_bytes=10)
        world.run_for(100 * MS)  # must not raise

    def test_latency_applied(self):
        config = SwitchConfig(latency=ConstantLatency(5 * MS), ns_per_byte=0)
        world, nic_a, nic_b = make_net(config=config)
        src = nic_a.bind(1)
        dst = nic_b.bind(2)
        arrivals = []
        dst.on_receive = lambda frame: arrivals.append(world.now)
        src.send("b", 2, payload=None, size_bytes=0)
        world.run_for(100 * MS)
        assert arrivals == [5 * MS]

    def test_serialization_delay_scales_with_size(self):
        config = SwitchConfig(latency=ConstantLatency(0), ns_per_byte=8)
        world, nic_a, nic_b = make_net(config=config)
        src = nic_a.bind(1)
        dst = nic_b.bind(2)
        arrivals = []
        dst.on_receive = lambda frame: arrivals.append(world.now)
        src.send("b", 2, payload=None, size_bytes=1000)
        world.run_for(1 * MS)
        assert arrivals == [8000]

    def test_loopback_uses_loopback_latency(self):
        config = SwitchConfig(
            latency=ConstantLatency(10 * MS),
            loopback_latency=ConstantLatency(100 * US),
            ns_per_byte=0,
        )
        world, nic_a, _ = make_net(config=config)
        src = nic_a.bind(1)
        dst = nic_a.bind(2)
        arrivals = []
        dst.on_receive = lambda frame: arrivals.append(world.now)
        src.send("a", 2, payload=None, size_bytes=0)
        world.run_for(100 * MS)
        assert arrivals == [100 * US]

    def test_drop_probability(self):
        config = SwitchConfig(drop_probability=1.0)
        world, nic_a, nic_b = make_net(config=config)
        src = nic_a.bind(1)
        dst = nic_b.bind(2)
        src.send("b", 2, payload=None, size_bytes=0)
        world.run_for(100 * MS)
        assert dst.received == 0
        assert world.network.frames_dropped == 1


class TestOrdering:
    def _send_many(self, in_order, seed=0, count=50):
        config = SwitchConfig(
            latency=UniformLatency(100 * US, 5 * MS),
            in_order=in_order,
            ns_per_byte=0,
        )
        world, nic_a, nic_b = make_net(seed=seed, config=config)
        src = nic_a.bind(1)
        dst = nic_b.bind(2)
        received = []
        dst.on_receive = lambda frame: received.append(frame.payload)
        for i in range(count):
            src.send("b", 2, payload=i, size_bytes=0)
        world.run_for(100 * MS)
        return received

    def test_in_order_flow_is_fifo(self):
        for seed in range(5):
            received = self._send_many(in_order=True, seed=seed)
            assert received == sorted(received)

    def test_unordered_flow_can_reorder(self):
        reordered = False
        for seed in range(10):
            received = self._send_many(in_order=False, seed=seed)
            assert sorted(received) == list(range(50))  # nothing lost
            if received != sorted(received):
                reordered = True
        assert reordered, "expected at least one reordering across seeds"


class TestInterfaces:
    def test_duplicate_host_rejected(self):
        world, nic_a, _ = make_net()
        with pytest.raises(NetworkError):
            NetworkInterface(world.platform("a"), world.network)

    def test_duplicate_port_rejected(self):
        world, nic_a, _ = make_net()
        nic_a.bind(5)
        with pytest.raises(NetworkError):
            nic_a.bind(5)

    def test_ephemeral_ports_unique(self):
        world, nic_a, _ = make_net()
        ports = {nic_a.bind().port for _ in range(10)}
        assert len(ports) == 10
        assert all(p >= 49152 for p in ports)

    def test_close_unbinds(self):
        world, nic_a, nic_b = make_net()
        src = nic_a.bind(1)
        dst = nic_b.bind(2)
        dst.close()
        src.send("b", 2, payload="x", size_bytes=1)
        world.run_for(50 * MS)
        assert dst.received == 0

    def test_latency_bound_covers_samples(self):
        config = SwitchConfig(latency=GammaLatency(base_ns=100 * US))
        world, nic_a, nic_b = make_net(config=config)
        src = nic_a.bind(1)
        dst = nic_b.bind(2)
        bound = world.network.latency_bound()
        arrivals = []
        dst.on_receive = lambda frame: arrivals.append(world.now)
        sent_times = []
        for i in range(100):
            world.sim.at(i * MS, lambda i=i: (sent_times.append(world.now),
                                              src.send("b", 2, i, 1400)))
        world.run_for(2000 * MS)
        assert len(arrivals) == 100
        for sent, arrived in zip(sent_times, sorted(arrivals)):
            assert arrived - sent <= bound

    def test_nic_registered_as_attachment(self):
        world, nic_a, _ = make_net()
        assert world.platform("a").attachments["nic"] is nic_a
