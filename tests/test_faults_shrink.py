"""ddmin over fired-fault traces: minimal fault sets from failing runs."""

import pytest

from repro.apps.brake import BrakeScenario
from repro.apps.brake.det import run_det_brake_assistant
from repro.explore import DecisionTrace, ddmin
from repro.faults import FaultInjector, FaultPlan, shrink_fault_trace
from repro.network.switch import Frame

SCENARIO = BrakeScenario(n_frames=40, deterministic_camera=True)
PLAN = FaultPlan.camera_faults(seed=7, drop=0.15, label="shrink-me")


def _camera_frame(index: int) -> Frame:
    return Frame(
        src_host="camera-ecu",
        src_port=40000,
        dst_host="fusion-ecu",
        dst_port=15000,
        payload=index,
        size_bytes=4096,
    )


def _record_unit_trace(n_frames: int = 200) -> DecisionTrace:
    injector = FaultInjector(PLAN)
    for i in range(n_frames):
        injector.on_send(_camera_frame(i), i * 1000)
    return injector.trace


class TestGenericDdmin:
    def test_finds_the_minimal_subset(self):
        needed = {1, 7, 8}
        minimal = ddmin(list(range(10)), lambda s: needed <= set(s))
        assert sorted(minimal) == sorted(needed)

    def test_result_is_one_minimal(self):
        def reproduces(subset):
            return {2, 5} <= set(subset)

        minimal = ddmin(list(range(8)), reproduces)
        for item in minimal:
            assert not reproduces([x for x in minimal if x != item])

    def test_single_item_failure(self):
        assert ddmin(list(range(16)), lambda s: 11 in s) == [11]


class TestShrinkFaultTrace:
    def test_shrinks_to_the_one_needed_drop(self):
        trace = _record_unit_trace()
        assert len(trace.records) >= 4
        target = trace.records[2]

        def failure(candidate: DecisionTrace) -> bool:
            # Replaying the candidate, is the target frame still dropped?
            injector = FaultInjector(PLAN, replay=candidate)
            verdicts = [
                injector.on_send(_camera_frame(i), i * 1000) for i in range(200)
            ]
            verdict = verdicts[target.bound]
            return verdict is not None and verdict.drop == "drop"

        result = shrink_fault_trace(PLAN, trace, failure)
        assert len(result.minimal.records) == 1
        assert result.minimal.records[0].bound == target.bound
        assert result.removed == len(trace.records) - 1
        assert result.trials == len(result.history)
        assert f"drop {target.name}#{target.bound}" in result.describe()

    def test_raises_when_the_full_trace_does_not_reproduce(self):
        trace = _record_unit_trace()
        with pytest.raises(ValueError):
            shrink_fault_trace(PLAN, trace, lambda candidate: False)

    def test_shrinks_an_end_to_end_brake_failure(self):
        # Record one faulty run, then ask: which fired faults does "the
        # pipeline answered fewer frames than the no-fault baseline"
        # actually need?  ddmin re-runs the det pipeline with subset
        # replays; the answer is a single dropped frame.
        baseline = run_det_brake_assistant(0, SCENARIO)
        first = run_det_brake_assistant(0, SCENARIO, fault_plan=PLAN)
        trace = DecisionTrace.from_dict(first.fault_summary["trace"])
        assert len(first.commands) < len(baseline.commands)

        def failure(candidate: DecisionTrace) -> bool:
            rerun = run_det_brake_assistant(
                0, SCENARIO, fault_plan=PLAN, fault_replay=candidate
            )
            return len(rerun.commands) < len(baseline.commands)

        result = shrink_fault_trace(PLAN, trace, failure)
        assert len(result.minimal.records) == 1
        assert result.minimal.records[0].kind == "drop"
