"""Integration tests: proxy <-> skeleton communication over SOME/IP."""

import pytest

from repro.ara import (
    Event,
    Field,
    Method,
    MethodCallProcessingMode,
    ServiceInterface,
)
from repro.ara.proxy import MethodCallError
from repro.errors import AraError, ServiceNotAvailableError
from repro.sim import Compute, Sleep
from repro.someip.serialization import INT32, STRING, UINT16
from repro.time import MS, SEC

from tests.conftest import build_ap_world, make_process

CALC = ServiceInterface(
    name="Calculator",
    service_id=0x1234,
    methods=[
        Method("set_value", 0x0001, arguments=[("value", INT32)]),
        Method("add", 0x0002, arguments=[("amount", INT32)]),
        Method("get_value", 0x0003, returns=[("value", INT32)]),
        Method("describe", 0x0004, returns=[("text", STRING), ("value", INT32)]),
        Method("ping", 0x0005, fire_and_forget=True),
    ],
    events=[Event("tick", 0x8001, data=[("count", INT32)])],
    fields=[Field("precision", UINT16)],
)


class CalcServer:
    """A simple calculator service used across these tests."""

    def __init__(self, process, instance_id=1, mode=MethodCallProcessingMode.EVENT):
        self.value = 0
        self.pings = 0
        self.skeleton = process.create_skeleton(
            CALC, instance_id, mode, field_defaults={"precision": 2}
        )
        self.skeleton.implement("set_value", self._set_value)
        self.skeleton.implement("add", self._add)
        self.skeleton.implement("get_value", lambda: self.value)
        self.skeleton.implement(
            "describe", lambda: {"text": "calc", "value": self.value}
        )
        self.skeleton.implement("ping", self._ping)
        self.skeleton.offer()

    def _set_value(self, value):
        self.value = value

    def _add(self, amount):
        self.value += amount

    def _ping(self):
        self.pings += 1


def setup_client_server(seed=0, mode=MethodCallProcessingMode.EVENT):
    world = build_ap_world(seed)
    server_process = make_process(world, "p1", "server")
    client_process = make_process(world, "p2", "client")
    server = CalcServer(server_process, mode=mode)
    return world, server, client_process


class TestMethodCalls:
    def test_serialized_round_trip(self):
        world, server, client_process = setup_client_server()
        results = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            future = proxy.call("set_value", value=10)
            yield from future.get()
            yield from proxy.call("add", amount=5).get()
            value = yield from proxy.call("get_value").get()
            results.append(value)

        client_process.spawn("main", client())
        world.run_for(2 * SEC)
        assert results == [15]

    def test_positional_arguments(self):
        world, server, client_process = setup_client_server()
        results = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            yield from proxy.call("set_value", 33).get()
            results.append((yield from proxy.call("get_value").get()))

        client_process.spawn("main", client())
        world.run_for(2 * SEC)
        assert results == [33]

    def test_dynamic_method_attributes(self):
        world, server, client_process = setup_client_server()
        results = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            yield from proxy.set_value(value=4).get()
            results.append((yield from proxy.get_value().get()))

        client_process.spawn("main", client())
        world.run_for(2 * SEC)
        assert results == [4]

    def test_multi_return_comes_back_as_dict(self):
        world, server, client_process = setup_client_server()
        results = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            yield from proxy.call("set_value", value=8).get()
            results.append((yield from proxy.call("describe").get()))

        client_process.spawn("main", client())
        world.run_for(2 * SEC)
        assert results == [{"text": "calc", "value": 8}]

    def test_fire_and_forget(self):
        world, server, client_process = setup_client_server()
        done = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            future = proxy.call("ping")
            yield from future.get()  # resolves immediately
            done.append(True)

        client_process.spawn("main", client())
        world.run_for(2 * SEC)
        assert done == [True]
        assert server.pings == 1

    def test_unknown_service_times_out(self):
        world = build_ap_world()
        client_process = make_process(world, "p2", "client")
        errors = []

        def client():
            try:
                yield from client_process.find_service(CALC, 1, timeout_ns=300 * MS)
            except ServiceNotAvailableError:
                errors.append("not-found")

        client_process.spawn("main", client())
        world.run_for(2 * SEC)
        assert errors == ["not-found"]

    def test_server_exception_becomes_error_response(self):
        world = build_ap_world()
        server_process = make_process(world, "p1", "server")
        client_process = make_process(world, "p2", "client")
        skeleton = server_process.create_skeleton(CALC, 1)
        for name in ("set_value", "add", "describe", "ping"):
            skeleton.implement(name, lambda **kw: None)

        def broken():
            raise RuntimeError("impl blew up")

        skeleton.implement("get_value", broken)
        skeleton.offer()
        errors = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            try:
                yield from proxy.call("get_value").get()
            except MethodCallError as exc:
                errors.append(exc.return_code.name)

        client_process.spawn("main", client())
        world.run_for(2 * SEC)
        assert errors == ["E_NOT_OK"]

    def test_generator_implementation_consumes_time(self):
        world = build_ap_world()
        server_process = make_process(world, "p1", "server")
        client_process = make_process(world, "p2", "client")
        skeleton = server_process.create_skeleton(CALC, 1)

        def slow_get():
            yield Compute(20 * MS)
            return 77

        for name in ("set_value", "add", "describe", "ping"):
            skeleton.implement(name, lambda **kw: None)
        skeleton.implement("get_value", slow_get)
        skeleton.offer()
        results = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            start = world.now
            value = yield from proxy.call("get_value").get()
            results.append((value, world.now - start))

        client_process.spawn("main", client())
        world.run_for(3 * SEC)
        value, elapsed = results[0]
        assert value == 77
        assert elapsed >= 20 * MS


class TestEvents:
    def test_event_delivery(self):
        world, server, client_process = setup_client_server()
        received = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            proxy.subscribe("tick", lambda count: received.append(count))
            yield Sleep(200 * MS)  # let the subscription reach the server

        client_process.spawn("main", client())
        world.run_for(500 * MS)
        server.skeleton.send_event("tick", 41)
        world.run_for(500 * MS)
        assert received == [41]

    def test_event_without_subscriber_goes_nowhere(self):
        world, server, client_process = setup_client_server()
        world.run_for(200 * MS)
        assert server.skeleton.send_event("tick", 1) == 0

    def test_multiple_subscribers_receive(self):
        world = build_ap_world(hosts=("p1", "p2", "p3"))
        server_process = make_process(world, "p1", "server")
        server = CalcServer(server_process)
        received = {"p2": [], "p3": []}
        for host in ("p2", "p3"):
            process = make_process(world, host, f"client-{host}")

            def client(process=process, host=host):
                proxy = yield from process.find_service(CALC, 1)
                proxy.subscribe("tick", lambda count: received[host].append(count))

            process.spawn("main", client())
        world.run_for(500 * MS)
        count = server.skeleton.send_event("tick", 7)
        world.run_for(500 * MS)
        assert count == 2
        assert received == {"p2": [7], "p3": [7]}


class TestFields:
    def test_field_get_set_notify(self):
        world, server, client_process = setup_client_server()
        log = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            field = proxy.field("precision")
            field.subscribe(lambda value: log.append(("notify", value)))
            yield Sleep(200 * MS)
            value = yield from field.get().get()
            log.append(("get", value))
            value = yield from field.set(5).get()
            log.append(("set", value))
            value = yield from field.get().get()
            log.append(("get2", value))

        client_process.spawn("main", client())
        world.run_for(2 * SEC)
        assert ("get", 2) in log
        assert ("set", 5) in log
        assert ("get2", 5) in log
        assert ("notify", 5) in log

    def test_server_side_field_update_notifies(self):
        world, server, client_process = setup_client_server()
        log = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            proxy.field("precision").subscribe(lambda value: log.append(value))

        client_process.spawn("main", client())
        world.run_for(500 * MS)
        server.skeleton.update_field("precision", 9)
        world.run_for(500 * MS)
        assert log == [9]
        assert server.skeleton.field_value("precision") == 9


class TestProcessingModes:
    def test_poll_mode_defers_until_pumped(self):
        world = build_ap_world()
        server_process = make_process(world, "p1", "server")
        client_process = make_process(world, "p2", "client")
        server = CalcServer(
            server_process, mode=MethodCallProcessingMode.POLL
        )
        results = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            future = proxy.call("get_value")
            yield Sleep(300 * MS)
            results.append(("before-pump", future.is_ready()))
            yield from future.get()
            results.append(("after-pump", True))

        def pump():
            yield Sleep(500 * MS)
            processed = yield from server.skeleton.process_next_method_call()
            results.append(("pumped", processed))

        client_process.spawn("main", client())
        server_process.spawn("pump", pump())
        world.run_for(2 * SEC)
        assert ("before-pump", False) in results
        assert ("pumped", True) in results
        assert ("after-pump", True) in results

    def test_poll_mode_empty_pump_returns_false(self):
        world = build_ap_world()
        server_process = make_process(world, "p1", "server")
        server = CalcServer(server_process, mode=MethodCallProcessingMode.POLL)
        results = []

        def pump():
            processed = yield from server.skeleton.process_next_method_call()
            results.append(processed)

        server_process.spawn("pump", pump())
        world.run_for(1 * SEC)
        assert results == [False]

    def test_pump_on_event_mode_rejected(self):
        world = build_ap_world()
        server_process = make_process(world, "p1", "server")
        server = CalcServer(server_process)
        failures = []

        def pump():
            try:
                yield from server.skeleton.process_next_method_call()
            except AraError:
                failures.append(True)

        server_process.spawn("pump", pump())
        world.run_for(1 * SEC)
        assert failures == [True]

    def test_offer_without_impls_rejected(self):
        world = build_ap_world()
        server_process = make_process(world, "p1", "server")
        skeleton = server_process.create_skeleton(CALC, 1)
        with pytest.raises(AraError):
            skeleton.offer()


class TestLocalCommunication:
    def test_same_platform_client_server(self):
        world = build_ap_world(hosts=("p1",))
        server_process = make_process(world, "p1", "server")
        client_process = make_process(world, "p1", "client")
        CalcServer(server_process)
        results = []

        def client():
            proxy = yield from client_process.find_service(CALC, 1)
            yield from proxy.call("set_value", value=6).get()
            results.append((yield from proxy.call("get_value").get()))

        client_process.spawn("main", client())
        world.run_for(2 * SEC)
        assert results == [6]
